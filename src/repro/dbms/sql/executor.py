"""Plan execution over partitioned storage.

The executor runs bound SELECT/DML statements and charges the cost model
as it goes.  Two execution styles coexist:

* a **row path** — compiled closures evaluated row by row — which is the
  reference semantics for everything, and
* a **vector path** used for aggregation over a single unfiltered base
  table: argument expressions compile to numpy functions per partition
  block, and aggregates that implement vectorized accumulation fold whole
  blocks at once.  This mirrors how a real engine pipelines an aggregate
  over a scan, and it must produce exactly the row path's results (tests
  compare the two).

Aggregation is partition-parallel in the paper's sense: one state per
partition (AMP), then a partial-result merge — the four run-time stages
of Section 3.4.  Both aggregation paths build their per-partition
partials through :class:`repro.dbms.engine.PartitionEngine` tasks, so a
database configured with ``executor_workers > 1`` runs partitions
concurrently; partials are always merged in partition order, which keeps
results bit-identical to serial execution.  Real (wall-clock) per-stage
timings land in a :class:`repro.dbms.metrics.QueryMetrics` record next
to the analytical cost charges.

Cost accounting: scans charge per (nominal) row and column; SQL select
lists charge per term per row; aggregate UDFs charge call overhead,
parameter transfer, and update arithmetic per row plus merge/return
packing; GROUP BY charges hashing and a spill multiplier once the group
state outgrows the 64 KB heap segment.  Nominal rows are physical rows ×
the table's row scale (see :mod:`repro.dbms.cost`).
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core import factorized as fcore
from repro.dbms.catalog import Catalog
from repro.dbms.cost import CostModel
from repro.dbms.engine import PartitionEngine
from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.metrics import QueryMetrics, StageTimer
from repro.dbms.expressions import (
    compile_row_expression,
    compile_vector_expression,
    referenced_columns,
    referenced_columns_of_all,
)
from repro.dbms.functions import AGGREGATE_BUILTINS, SCALAR_BUILTINS, AggregateFunction
from repro.dbms.schema import Column, TableSchema
from repro.dbms.sql import ast
from repro.dbms.sql.factorize import FactorizeDecision, plan_factorize
from repro.dbms.sql.plan import Plan, build_plan
from repro.dbms.sql.vectorized import (
    BlockItem,
    RawColumnItem,
    VectorizedSelectPlan,
    plan_vectorized_select,
)
from repro.dbms.sql.planner import (
    AggregateCall,
    Binder,
    BoundColumn,
    find_aggregates,
    output_name,
    substitute,
)
from repro.dbms.storage import BlockCacheStats, Table
from repro.dbms.trace import NULL_TRACER, Span, Tracer
from repro.dbms.types import SqlType
from repro.dbms.udf import AggregateUdf
from repro.errors import (
    ExecutionError,
    PartitionExecutionError,
    PlanningError,
    SchemaError,
)


@dataclass
class Relation:
    """A runtime relation: bound columns plus materialized rows.

    ``base_table`` is set when the relation is a pure, unfiltered scan of
    one stored table — the case where partition structure and the vector
    path are available.  ``row_scale`` carries the cost-model scale of
    the underlying data through joins and projections.
    """

    columns: list[BoundColumn]
    rows: list[tuple] = field(default_factory=list)
    row_scale: float = 1.0
    base_table: Table | None = None
    _materialized: bool = True

    @property
    def width(self) -> int:
        return len(self.columns)

    @property
    def physical_rows(self) -> int:
        if self.base_table is not None and not self._materialized:
            return self.base_table.row_count
        return len(self.rows)

    @property
    def nominal_rows(self) -> float:
        return self.physical_rows * self.row_scale

    def materialize(self) -> "Relation":
        if self.base_table is not None and not self._materialized:
            self.rows = self.base_table.rows()
            self._materialized = True
        return self

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]


def _base_scan(table: Table, binding: str) -> Relation:
    columns = [BoundColumn(binding, column.name) for column in table.schema.columns]
    return Relation(
        columns=columns,
        rows=[],
        row_scale=table.row_scale,
        base_table=table,
        _materialized=False,
    )


def _fold_rows_into(
    rows: Sequence[tuple],
    aggregates: list["_AggregateSpec"],
    group_fns: list[Callable[[tuple], Any]],
    where_fn: Callable[[tuple], Any] | None,
) -> tuple[dict[tuple, list[Any]], int]:
    """Fold *rows* into a fresh per-group partial-state dict.

    The single row-path accumulation loop: partition tasks call it for
    one partition's rows, and batched statements call it once per
    statement against the same materialized rows — one source of truth,
    so a batched statement's partials are the very floats its serial
    execution would produce.  Returns ``(partials, rows folded)``.
    """
    local: dict[tuple, list[Any]] = {}
    folded = 0
    for row in rows:
        if where_fn is not None and where_fn(row) is not True:
            continue
        key = tuple(fn(row) for fn in group_fns)
        states = local.get(key)
        if states is None:
            states = [spec.initialize() for spec in aggregates]
            local[key] = states
        for index, spec in enumerate(aggregates):
            states[index] = spec.accumulate_row(states[index], row)
        folded += 1
    return local, folded


def _fold_vector_block(
    block: "np.ndarray",
    aggregates: list["_AggregateSpec"],
    group_exprs: list[ast.Expression],
    group_vector_fns: list[Any],
) -> dict[tuple, list[Any]]:
    """Fold one partition's column block into per-group partial states.

    Vector-path counterpart of :func:`_fold_rows_into`, shared between
    ``_accumulate_vectorized`` and the batch shared scan for the same
    bit-parity reason.
    """
    local: dict[tuple, list[Any]] = {}
    if not group_exprs:
        partial = [spec.initialize() for spec in aggregates]
        for index, spec in enumerate(aggregates):
            partial[index] = spec.accumulate_vector(partial[index], block)
        local[()] = partial
    else:
        key_arrays = [fn(block) for fn in group_vector_fns]
        # Integral float keys become ints so vector- and row-path group
        # keys compare equal (i MOD k on an INTEGER column).
        keys = [
            tuple(
                int(v) if isinstance(v, float) and v.is_integer() else v
                for v in key
            )
            for key in zip(*(array.tolist() for array in key_arrays))
        ]
        index_map: dict[tuple, list[int]] = {}
        for row_index, key in enumerate(keys):
            index_map.setdefault(key, []).append(row_index)
        for key, row_indices in index_map.items():
            slice_block = block[np.asarray(row_indices)]
            partial = [spec.initialize() for spec in aggregates]
            for index, spec in enumerate(aggregates):
                partial[index] = spec.accumulate_vector(
                    partial[index], slice_block
                )
            local[key] = partial
    return local


class _BatchStatement:
    """Per-statement state threaded through a consolidated batch.

    One of these exists per *distinct* statement (duplicates share it):
    its compiled accessors, its accumulation strategy, its group states,
    and finally its result relation.
    """

    def __init__(
        self,
        select: ast.Select,
        env: Relation,
        binder: "Binder",
        aggregates: "list[_AggregateSpec]",
        group_exprs: list[ast.Expression],
        group_fns: list[Callable[[tuple], Any]],
        where_fn: Callable[[tuple], Any] | None,
    ) -> None:
        self.select = select
        self.env = env
        self.binder = binder
        self.aggregates = aggregates
        self.group_exprs = group_exprs
        self.group_fns = group_fns
        self.where_fn = where_fn
        self.groups: dict[tuple, list[Any]] = {}
        #: served whole from the summary cache (no scan participation)
        self.served = False
        #: rides the vector path inside the shared scan (decided with
        #: exactly the serial eligibility test)
        self.use_vector = False
        self.result: Relation | None = None
        # Vector-path compilation products (set by _batch_fan_out).
        self.vector_positions: list[int] = []
        self.group_vector_fns: list[Any] = []
        self.fused_udfs: list[tuple[str, str]] = []


class Executor:
    """Executes statements against a catalog, charging a cost model.

    ``engine`` decides whether per-partition aggregation tasks run
    inline (one worker, the default) or on a thread pool; it may be
    swapped between statements (``Database.executor_workers``).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost: CostModel,
        engine: PartitionEngine | None = None,
    ) -> None:
        self._catalog = catalog
        self._cost = cost
        self.engine = engine or PartitionEngine()
        #: wall-clock record of the most recently executed statement
        self.last_metrics = QueryMetrics()
        #: span tracer for the statement in flight; NULL_TRACER (the
        #: default) allocates nothing — only EXPLAIN ANALYZE swaps in a
        #: real Tracer for the duration of the inner statement
        self.tracer = NULL_TRACER
        #: plan of the most recent EXPLAIN [ANALYZE] statement, else None
        self.last_plan: Plan | None = None
        #: whether eligible projections run block-wise (see
        #: :mod:`repro.dbms.sql.vectorized`); toggled via
        #: ``Database.vectorized_select`` — row path when False
        self.vectorized_select = True
        #: fault-injection plan for executor-level sites
        #: (``partition.scan``, ``block.materialize``,
        #: ``udf.compute_batch``, ``udf.fused_iter``); installed by
        #: ``Database(faults=...)``
        self.faults: FaultPlan | NullFaults = NULL_FAULTS
        #: opt-in summary-matrix cache, installed by
        #: ``Database.summary_cache_enabled = True``; ``None`` (the
        #: default) keeps every statement on the scan path
        self.summary_cache: "Any | None" = None
        #: the rewrite pass's decision for the most recent
        #: ``execute_batch`` call (consolidated or refused-with-reason);
        #: None until a batch runs
        self.last_batch_decision: "Any | None" = None
        #: whether eligible star-join aggregates run factorized
        #: (per-base-table partials combined through the key–FK join,
        #: the joined table never materialized); toggled via
        #: ``Database.factorized_joins_enabled``
        self.factorized_joins_enabled = True
        #: the factorize pass's decision for the most recent SELECT
        #: with joins (factorized or refused-with-reason); None when
        #: the last statement had no joins
        self.last_factorize_decision: "FactorizeDecision | None" = None
        #: columnar block store used to ship zero-copy partition
        #: descriptors to process-pool workers; installed by a durable
        #: or process-enabled Database, ``None`` keeps every fan-out on
        #: in-process closures
        self.columnar_store: "Any | None" = None

    # ----------------------------------------------------------- supervision
    def _engine_map(
        self,
        tasks: Sequence[Callable[[], Any]],
        spans: "list[Span] | None" = None,
        partition_ids: "Sequence[int] | None" = None,
        payloads: "Sequence[Any] | None" = None,
    ) -> list[Any]:
        """Run per-partition scan tasks on the engine, folding the
        engine's retry/timeout counters into this statement's metrics —
        also when the map fails (a degraded statement still reports the
        retries its failed attempt spent)."""
        engine = self.engine
        try:
            # Every executor fan-out is a pure partition scan, so the
            # engine's bounded retries may safely re-run a task.
            return engine.map(
                tasks,
                spans,
                idempotent=True,
                partition_ids=partition_ids,
                payloads=payloads,
            )
        finally:
            self.last_metrics.task_retries += engine.last_task_retries
            self.last_metrics.task_timeouts += engine.last_task_timeouts

    def _published_for_process(self, table: Table) -> "dict | None":
        """Columnar block descriptor for *table*, or None when this
        fan-out must stay on in-process closures (thread engine, no
        store installed, or publish failed — e.g. an unencodable
        value)."""
        if not self.engine.uses_processes or self.columnar_store is None:
            return None
        try:
            return self.columnar_store.publish(table)
        except Exception:  # pragma: no cover - defensive: fall back
            return None

    def _shippable_scalar_udfs(
        self, expressions: "Sequence[ast.Expression | None]"
    ) -> "dict[str, Any] | None":
        """Registered scalar UDFs referenced by *expressions*, keyed by
        lowercase name, for shipping to worker processes.  Returns None
        when a referenced UDF exists but cannot be resolved — the
        caller must then keep the fan-out in-process."""
        shipped: dict[str, Any] = {}
        for expression in expressions:
            if expression is None:
                continue
            for node in ast.walk(expression):
                if not isinstance(node, ast.FuncCall):
                    continue
                udf = self._catalog.scalar_udf(node.name)
                if udf is not None:
                    shipped[node.name.lower()] = udf
        return shipped

    def _fold_cache_stats(self, stats: "BlockCacheStats") -> None:
        """Fold one task's block-cache outcome into this statement's
        metrics (hits/misses plus the eviction and spill counters the
        byte-budgeted cache reports)."""
        metrics = self.last_metrics
        if stats.hit:
            metrics.block_cache_hits += 1
        else:
            metrics.block_cache_misses += 1
        metrics.cache_evictions += stats.evictions
        metrics.blocks_spilled += stats.spilled_blocks
        metrics.bytes_spilled += stats.spilled_bytes

    def _rollback_metrics(self, snapshot: "dict[str, Any]") -> None:
        """Restore metrics to *snapshot*, keeping the retry/timeout
        counters the failed attempt accrued (real events the degraded
        statement must still report)."""
        metrics = self.last_metrics
        task_retries = metrics.task_retries
        task_timeouts = metrics.task_timeouts
        for name, value in snapshot.items():
            setattr(metrics, name, value)
        metrics.task_retries = task_retries
        metrics.task_timeouts = task_timeouts

    def _note_failed_span(self, operator: str, exc: BaseException) -> None:
        """Mark the span a failed vectorized attempt left behind.

        The attempt's ``with tracer.span(...)`` already closed (the
        exception unwound it), so the span is the last child of the
        innermost open span.  Marking it ``failed`` keeps it visible in
        the ANALYZE trace while :func:`~repro.dbms.sql.plan.
        _operator_spans` skips it when pairing spans with plan
        operators — the row-path retry's span is the one that pairs.
        """
        current = self.tracer.current
        if current is None or not current.children:
            return
        last = current.children[-1]
        if last.name == operator:
            last.attributes["failed"] = True
            last.attributes["error"] = _describe_failure(exc)

    # --------------------------------------------------------------- dispatch
    def execute(self, statement: ast.Statement) -> Relation:
        self.last_metrics = QueryMetrics(workers=self.engine.workers)
        self.last_plan = None
        started = time.perf_counter()
        try:
            return self._dispatch(statement)
        finally:
            self.last_metrics.total_seconds = time.perf_counter() - started
            # rows_scanned equals rows_processed for every scan-path
            # statement; only a summary-cache serve sets it lower (a
            # fresh hit scans zero rows, a stale hit only the suffix).
            self.last_metrics.rows_scanned = max(
                self.last_metrics.rows_scanned,
                self.last_metrics.rows_processed,
            )

    def _dispatch(self, statement: ast.Statement) -> Relation:
        if isinstance(statement, ast.Explain):
            # Before any charging: plain EXPLAIN costs nothing.
            return self._execute_explain(statement)
        if isinstance(statement, ast.Select):
            self._cost.charge_sql_statement(len(statement.items))
            return self.execute_select(statement)
        self._cost.charge_sql_statement(1)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateView):
            self._catalog.create_view(
                statement.name, statement.select, statement.or_replace
            )
            return _empty_result()
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.DropTable):
            self._catalog.drop_table(statement.name, statement.if_exists)
            return _empty_result()
        if isinstance(statement, ast.DropView):
            self._catalog.drop_view(statement.name, statement.if_exists)
            return _empty_result()
        raise PlanningError(f"cannot execute {type(statement).__name__}")

    # --------------------------------------------------------------- EXPLAIN
    def _execute_explain(self, statement: ast.Explain) -> Relation:
        """EXPLAIN renders the optimized plan with cost estimates and
        charges nothing; ANALYZE additionally executes the optimized
        statement under span tracing and annotates each operator with
        its measured wall clock."""
        inner = statement.statement
        if not isinstance(inner, ast.Select):
            raise PlanningError(
                f"EXPLAIN supports SELECT statements, got "
                f"{type(inner).__name__}"
            )
        plan = build_plan(
            self._catalog,
            inner,
            self._cost.params,
            analyze=statement.analyze,
            vectorized_select=self.vectorized_select,
            factorized_joins=self.factorized_joins_enabled,
        )
        # Probed before ANALYZE executes, so the note reports the cache
        # state this statement actually saw (a miss that warms the cache
        # still renders as the miss it was).
        cache_note = self._summary_cache_note(plan.optimized)
        if cache_note is None:
            cache_note = self._factorized_cache_note(plan.optimized)
        if cache_note is not None:
            for node in plan.find("aggregate"):
                node.notes.append(cache_note)
        if statement.analyze:
            tracer = Tracer()
            self.tracer = tracer
            started = time.perf_counter()
            try:
                self._dispatch(plan.optimized)
            finally:
                self.tracer = NULL_TRACER
            # The outer execute() overwrites this with the full
            # statement wall clock; filling it now lets the rendered
            # text report the inner execution time.
            self.last_metrics.total_seconds = time.perf_counter() - started
            plan.attach_trace(tracer.root, self.last_metrics)
        self.last_plan = plan
        return Relation(
            columns=[BoundColumn(None, "plan")],
            rows=[(line,) for line in plan.render()],
        )

    # ------------------------------------------------------------------- DDL
    def _execute_create_table(self, statement: ast.CreateTable) -> Relation:
        columns = tuple(
            Column(
                definition.name,
                SqlType.from_name(definition.type_name),
                nullable=not definition.not_null,
            )
            for definition in statement.columns
        )
        schema = TableSchema(columns, statement.primary_key)
        self._catalog.create_table(
            statement.name, schema, if_not_exists=statement.if_not_exists
        )
        return _empty_result()

    # ------------------------------------------------------------------- DML
    def _execute_insert(self, statement: ast.Insert) -> Relation:
        table = self._catalog.table(statement.table)
        if statement.select is not None:
            source = self.execute_select(statement.select)
            rows: list[tuple] = source.rows
        else:
            binder = Binder([])
            rows = []
            for value_row in statement.values:
                compiled = [
                    compile_row_expression(expr, binder.resolve, self._scalar_registry)
                    for expr in value_row
                ]
                rows.append(tuple(fn(()) for fn in compiled))
        if statement.columns:
            positions = {
                name.lower(): index for index, name in enumerate(statement.columns)
            }
            full_rows = []
            for row in rows:
                if len(row) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT row has {len(row)} values for "
                        f"{len(statement.columns)} named columns"
                    )
                full = [
                    row[positions[column.name.lower()]]
                    if column.name.lower() in positions
                    else None
                    for column in table.schema.columns
                ]
                full_rows.append(tuple(full))
            rows = full_rows
        inserted = table.insert_many(rows)
        self._cost.charge_insert(inserted * table.row_scale, table.width)
        return _empty_result()

    def _execute_delete(self, statement: ast.Delete) -> Relation:
        table = self._catalog.table(statement.table)
        self._cost.charge_scan(table.nominal_rows, table.width)
        if statement.where is None:
            table.truncate()
            return _empty_result()
        columns = [BoundColumn(table.name, c.name) for c in table.schema.columns]
        binder = Binder(columns)
        predicate = compile_row_expression(
            statement.where, binder.resolve, self._scalar_registry
        )
        surviving = [row for row in table.rows() if predicate(row) is not True]
        table.truncate()
        table.insert_many(surviving)
        return _empty_result()

    def _execute_update(self, statement: ast.Update) -> Relation:
        table = self._catalog.table(statement.table)
        self._cost.charge_scan(table.nominal_rows, table.width)
        columns = [BoundColumn(table.name, c.name) for c in table.schema.columns]
        binder = Binder(columns)
        predicate = (
            compile_row_expression(
                statement.where, binder.resolve, self._scalar_registry
            )
            if statement.where is not None
            else None
        )
        targets: list[tuple[int, Callable[[tuple], Any]]] = []
        for column_name, expression in statement.assignments:
            position = binder.resolve(ast.ColumnRef(column_name))
            targets.append(
                (
                    position,
                    compile_row_expression(
                        expression, binder.resolve, self._scalar_registry
                    ),
                )
            )
        updated_rows: list[tuple] = []
        touched = 0
        for row in table.rows():
            if predicate is None or predicate(row) is True:
                new_row = list(row)
                # Evaluate every assignment against the *old* row (SQL
                # semantics: SET a = b, b = a swaps).
                for position, fn in targets:
                    new_row[position] = fn(row)
                updated_rows.append(tuple(new_row))
                touched += 1
            else:
                updated_rows.append(row)
        table.truncate()
        table.insert_many(updated_rows)
        self._cost.charge_insert(touched * table.row_scale, len(targets))
        return _empty_result()

    # ---------------------------------------------------------------- SELECT
    def execute_select(self, select: ast.Select) -> Relation:
        if select.joins and self.factorized_joins_enabled:
            factorized = self._try_factorized_select(select)
            if factorized is not None:
                return factorized
        env = self._build_from_environment(select)
        aggregate_calls = self._collect_aggregates(select)
        if aggregate_calls or select.group_by:
            result, order_context = self._execute_aggregate(
                select, env, aggregate_calls
            )
        else:
            if select.having is not None:
                raise PlanningError("HAVING requires GROUP BY or aggregates")
            result, order_context = self._execute_projection(select, env)
        result = self._apply_order_limit(select, result, order_context)
        return result

    # ------------------------------------------------------- batch execution
    def execute_batch(
        self, selects: Sequence[ast.Select], decision: "Any"
    ) -> list[Relation]:
        """Run a consolidated batch: one shared scan, N statement results.

        *decision* is the consolidated
        :class:`~repro.dbms.sql.rewrite.BatchDecision` the rewrite pass
        proved safe; refused batches never reach here (the database runs
        them serially).  One metrics record covers the whole batch.
        """
        self.last_metrics = QueryMetrics(workers=self.engine.workers)
        self.last_plan = None
        started = time.perf_counter()
        try:
            return self._execute_batch_consolidated(selects, decision)
        finally:
            self.last_metrics.total_seconds = time.perf_counter() - started
            self.last_metrics.rows_scanned = max(
                self.last_metrics.rows_scanned,
                self.last_metrics.rows_processed,
            )

    def _execute_batch_consolidated(
        self, selects: Sequence[ast.Select], decision: "Any"
    ) -> list[Relation]:
        table = self._catalog.table(decision.table)
        metrics = self.last_metrics
        metrics.statements_batched += len(selects)
        prepared: list[_BatchStatement] = []
        for input_index in decision.distinct:
            select = selects[input_index]
            # Duplicates of this statement charge nothing — folding them
            # into one accumulation is the rewrite's analytical saving.
            self._cost.charge_sql_statement(len(select.items))
            env = _base_scan(table, select.from_sources[0].binding_name)
            binder = Binder(env.columns)
            aggregate_calls = self._collect_aggregates(select)
            aggregates = [
                _AggregateSpec(
                    call, self._aggregate_object(call.name), binder, self
                )
                for call in aggregate_calls
            ]
            group_exprs = list(select.group_by)
            group_fns = [
                compile_row_expression(
                    expr, binder.resolve, self._scalar_registry
                )
                for expr in group_exprs
            ]
            where_fn = (
                compile_row_expression(
                    select.where, binder.resolve, self._scalar_registry
                )
                if select.where is not None
                else None
            )
            stmt = _BatchStatement(
                select, env, binder, aggregates, group_exprs, group_fns, where_fn
            )
            served = self._serve_from_summary_cache(select, env, aggregates)
            if served is not None:
                stmt.groups = {(): [served]}
                stmt.served = True
            elif not group_exprs:
                # SQL semantics: a grand aggregate always yields one row.
                stmt.groups[()] = [spec.initialize() for spec in aggregates]
            prepared.append(stmt)

        scan_statements = [stmt for stmt in prepared if not stmt.served]
        if scan_statements:
            # ONE scan charge for the whole batch — this replaces the
            # per-statement charge serial execution makes in
            # _relation_for_source.
            self._cost.charge_scan(table.nominal_rows, table.width)
            for stmt in scan_statements:
                stmt.use_vector = self._batch_statement_vector_ready(stmt)
            self._batch_shared_scan(table, scan_statements)
            for stmt in scan_statements:
                self._charge_aggregate_costs(
                    stmt.select, stmt.env, stmt.aggregates, len(stmt.groups)
                )

        # Every input statement that would have scanned (cache serves
        # already counted their own scans_saved) shares the one scan.
        would_scan = sum(
            1 for position in decision.assignment if not prepared[position].served
        )
        if would_scan:
            metrics.scans_saved += would_scan - 1

        for stmt in prepared:
            result, order_context = self._finalize_aggregate(
                stmt.select, stmt.aggregates, stmt.group_exprs, stmt.groups
            )
            stmt.result = self._apply_order_limit(
                stmt.select, result, order_context
            )
        return [prepared[position].result for position in decision.assignment]

    def _batch_statement_vector_ready(self, stmt: "_BatchStatement") -> bool:
        """Exactly the vector-eligibility test serial execution applies.

        Per statement, not per batch: vector- and row-path results are
        each bit-identical to their serial counterpart but not to each
        other, so a batched statement must ride the same path its serial
        execution would.
        """
        return (
            stmt.where_fn is None
            and all(spec.vector_ready for spec in stmt.aggregates)
            and self._vector_group_keys_ready(stmt.group_exprs, stmt.binder)
            and self._referenced_columns_numeric(
                stmt.env, stmt.aggregates, stmt.group_exprs, stmt.binder
            )
        )

    def _batch_shared_scan(
        self, table: Table, statements: "list[_BatchStatement]"
    ) -> None:
        """One fan-out feeding every statement's accumulators.

        Mirrors the serial degradation contract: if any statement rides
        the vector path and the fan-out fails, the whole batch rolls
        back (metrics too, minus real retry/timeout counts) and retries
        once with every statement on the row path; an all-row batch
        propagates, as the serial row path does.
        """
        if any(stmt.use_vector for stmt in statements):
            snapshot = self.last_metrics.to_dict()
            try:
                with self.tracer.span("aggregate") as span:
                    self._batch_fan_out(table, statements)
                    if span is not None:
                        span.attributes["strategy"] = "shared-scan"
                        span.attributes["statements"] = len(statements)
                return
            except Exception as exc:
                fallback_reason = _describe_failure(exc)
                self._note_failed_span("aggregate", exc)
                self._rollback_metrics(snapshot)
                self.last_metrics.fallbacks += 1
                self.last_metrics.fallback_reason = fallback_reason
                for stmt in statements:
                    stmt.groups.clear()
                    if not stmt.group_exprs:
                        stmt.groups[()] = [
                            spec.initialize() for spec in stmt.aggregates
                        ]
                    stmt.use_vector = False
            with self.tracer.span("aggregate") as span:
                self._batch_fan_out(table, statements)
                if span is not None:
                    span.attributes["strategy"] = "shared-scan row (fallback)"
                    span.attributes["fallback_reason"] = fallback_reason
                    span.attributes["statements"] = len(statements)
            return
        with self.tracer.span("aggregate") as span:
            self._batch_fan_out(table, statements)
            if span is not None:
                span.attributes["strategy"] = "shared-scan"
                span.attributes["statements"] = len(statements)

    def _batch_fan_out(
        self, table: Table, statements: "list[_BatchStatement]"
    ) -> None:
        """One partition-parallel pass feeding N accumulator sets per task.

        Each task reads its partition once — rows if any statement is on
        the row path, plus one column block per vector statement — and
        folds every statement's partials with the same fold helpers the
        serial paths use.  Partials merge strictly in partition order
        per statement, so each statement's result is bit-identical to
        its serial execution at any worker count.
        """
        row_stmts = [stmt for stmt in statements if not stmt.use_vector]
        vector_stmts = [stmt for stmt in statements if stmt.use_vector]
        for stmt in vector_stmts:
            needed = referenced_columns_of_all(
                [spec.call.call for spec in stmt.aggregates]
                + list(stmt.group_exprs)
            )
            resolver_map = {
                (ref.table, ref.name.lower()): index
                for index, ref in enumerate(needed)
            }
            stmt.vector_positions = [stmt.binder.resolve(ref) for ref in needed]

            def matrix_resolver(
                ref: ast.ColumnRef, _map=resolver_map
            ) -> int:
                return _map[(ref.table, ref.name.lower())]

            stmt.group_vector_fns = [
                compile_vector_expression(expr, matrix_resolver)
                for expr in stmt.group_exprs
            ]
            for spec in stmt.aggregates:
                spec.prepare_vector(matrix_resolver)
            stmt.fused_udfs = [
                (site, spec.call.name)
                for spec in stmt.aggregates
                if (site := getattr(spec.aggregate, "fault_site", None))
            ]

        numbered = [
            (index, partition)
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        faults = self.faults
        need_rows = bool(row_stmts)

        def make_task(pid, partition):
            def task() -> tuple[
                list[dict], list[BlockCacheStats], int, float, float
            ]:
                scan_start = time.perf_counter()
                if need_rows and faults.enabled:
                    faults.fire("partition.scan", partition=pid)
                rows = list(partition.rows()) if need_rows else None
                blocks: list[Any] = []
                cache_stats: list[BlockCacheStats] = []
                for stmt in vector_stmts:
                    if faults.enabled:
                        faults.fire("block.materialize", partition=pid)
                    block, stats = partition.numeric_matrix_with_cache_stats(
                        stmt.vector_positions
                    )
                    if faults.enabled:
                        for site, udf_name in stmt.fused_udfs:
                            faults.fire(site, partition=pid, udf=udf_name)
                    blocks.append(block)
                    cache_stats.append(stats)
                accumulate_start = time.perf_counter()
                locals_out: list[dict[tuple, list[Any]]] = []
                vector_index = 0
                for stmt in statements:
                    if stmt.use_vector:
                        local = _fold_vector_block(
                            blocks[vector_index],
                            stmt.aggregates,
                            stmt.group_exprs,
                            stmt.group_vector_fns,
                        )
                        vector_index += 1
                    else:
                        local, _ = _fold_rows_into(
                            rows, stmt.aggregates, stmt.group_fns, stmt.where_fn
                        )
                    locals_out.append(local)
                done = time.perf_counter()
                return (
                    locals_out,
                    cache_stats,
                    partition.row_count,
                    accumulate_start - scan_start,
                    done - accumulate_start,
                )

            return task

        tasks = [make_task(pid, p) for pid, p in numbered]
        partition_ids = [index for index, _ in numbered]
        task_spans: list[Span] | None = None
        if self.tracer.enabled:
            task_spans = []
            results = self._engine_map(tasks, task_spans, partition_ids)
            self.tracer.attach(task_spans)
        else:
            results = self._engine_map(tasks, partition_ids=partition_ids)
        metrics = self.last_metrics
        metrics.parallel_tasks += len(numbered)
        for result in results:
            for stats in result[1]:
                self._fold_cache_stats(stats)
        with self.tracer.span("merge") as merge_span, StageTimer(
            metrics, "merge", merge_span
        ):
            for index, result in enumerate(results):
                locals_out, _, scanned, scan_seconds, accumulate_seconds = result
                metrics.scan_seconds += scan_seconds
                metrics.accumulate_seconds += accumulate_seconds
                # Physical rows read ONCE per partition, however many
                # statements they fed — the number the shared scan is for.
                metrics.rows_processed += scanned
                if any(locals_out):
                    metrics.partitions_processed += 1
                if task_spans is not None:
                    span = task_spans[index]
                    span.attributes["partition"] = partition_ids[index]
                    span.attributes["rows"] = scanned
                    span.attributes["statements"] = len(statements)
                    span.children.append(Span("scan", seconds=scan_seconds))
                    span.children.append(
                        Span("accumulate", seconds=accumulate_seconds)
                    )
                for stmt, local in zip(statements, locals_out):
                    for key, partial in local.items():
                        states = stmt.groups.get(key)
                        if states is None:
                            stmt.groups[key] = partial
                        else:
                            for position, spec in enumerate(stmt.aggregates):
                                states[position] = spec.merge(
                                    states[position], partial[position]
                                )

    # ------------------------------------------------------ FROM environment
    def _build_from_environment(self, select: ast.Select) -> Relation:
        sources: list[
            tuple[ast.FromSource, Relation, ast.Expression | None, bool]
        ] = []
        for source in select.from_sources:
            sources.append((source, self._relation_for_source(source), None, False))
        for join in select.joins:
            sources.append(
                (
                    join.source,
                    self._relation_for_source(join.source),
                    join.condition,
                    join.outer,
                )
            )
        if not sources:
            return Relation(columns=[], rows=[()])
        if len(sources) == 1 and sources[0][2] is None:
            return sources[0][1]

        # Materialize a left-deep nested-loop join across all sources.
        _, current, _, _ = sources[0]
        current = current.materialize()
        for _, right, condition, outer in sources[1:]:
            right = right.materialize()
            # Honest input accounting for the nested loop: every outer
            # row re-reads the whole inner relation, so a join step's
            # physical reads are |outer| + |outer| x |inner| — the
            # number the factorized path's rows_join_avoided is
            # measured against.
            self.last_metrics.rows_scanned += len(current.rows) * (
                1 + len(right.rows)
            )
            with self.tracer.span("join") as join_span:
                joined_columns = current.columns + right.columns
                joined_rows: list[tuple] = []
                if condition is not None:
                    binder = Binder(joined_columns)
                    predicate = compile_row_expression(
                        condition, binder.resolve, self._scalar_registry
                    )
                    null_pad = (None,) * right.width
                    for left_row in current.rows:
                        matched = False
                        for right_row in right.rows:
                            combined = left_row + right_row
                            if predicate(combined) is True:
                                joined_rows.append(combined)
                                matched = True
                        if outer and not matched:
                            # LEFT OUTER: keep the left row, NULL-padded —
                            # the paper's "populating missing values with
                            # nulls" star-join construction.
                            joined_rows.append(left_row + null_pad)
                else:
                    for left_row in current.rows:
                        for right_row in right.rows:
                            joined_rows.append(left_row + right_row)
                if join_span is not None:
                    join_span.attributes["rows"] = len(joined_rows)
            scale = max(current.row_scale, right.row_scale)
            current = Relation(
                columns=joined_columns, rows=joined_rows, row_scale=scale
            )
            self._cost.charge_spool_rows(
                len(joined_rows) * scale, len(joined_columns)
            )
        return current

    def _relation_for_source(self, source: ast.FromSource) -> Relation:
        if isinstance(source, ast.DerivedTable):
            inner = self.execute_select(source.select).materialize()
            # The derived result is spooled and re-read by the outer query
            # (this is the paper's "two scans on a pivoted version of X").
            self._cost.charge_spool_rows(inner.nominal_rows, inner.width)
            self._cost.charge_scan(inner.nominal_rows, inner.width)
            columns = [
                BoundColumn(source.alias, column.name) for column in inner.columns
            ]
            return Relation(
                columns=columns, rows=inner.rows, row_scale=inner.row_scale
            )
        binding = source.binding_name
        if self._catalog.has_view(source.name):
            view_select = self._catalog.view(source.name)
            inner = self.execute_select(view_select).materialize()
            columns = [BoundColumn(binding, column.name) for column in inner.columns]
            return Relation(
                columns=columns, rows=inner.rows, row_scale=inner.row_scale
            )
        table = self._catalog.table(source.name)
        self._cost.charge_scan(table.nominal_rows, table.width)
        return _base_scan(table, binding)

    # ------------------------------------------------------------ projection
    def _execute_projection(
        self, select: ast.Select, env: Relation
    ) -> "tuple[Relation, _OrderContext]":
        binder = Binder(env.columns)
        items = self._expand_stars(select.items, binder)

        charged_expressions = [item.expression for item in items]
        if select.where is not None:
            charged_expressions.append(select.where)
        self._cost.charge_sql_evaluation(
            env.nominal_rows, self._expression_nodes(charged_expressions)
        )
        self._charge_scalar_udf_calls(charged_expressions, env.nominal_rows)

        # All analytical charges above are identical for both paths —
        # the block path is a pure wall-clock optimization, invisible to
        # the simulated-seconds benchmarks.
        fallback_reason: str | None = None
        if (
            self.vectorized_select
            and env.base_table is not None
            and not env._materialized
        ):
            decision = plan_vectorized_select(self._catalog, select, self.faults)
            if decision.plan is not None:
                snapshot = self.last_metrics.to_dict()
                try:
                    return self._execute_projection_vectorized(
                        env, binder, items, decision.plan, select
                    )
                except Exception as exc:
                    # Graceful degradation: the block path is an
                    # optimization, never a correctness requirement.  A
                    # runtime failure (kernel bug, injected fault, task
                    # timeout) retries on the reference row path once,
                    # with the failed attempt's metrics unwound so the
                    # statement reports row-path numbers plus the
                    # fallback itself.
                    fallback_reason = _describe_failure(exc)
                    self._note_failed_span("project", exc)
                    self._rollback_metrics(snapshot)
                    self.last_metrics.fallbacks += 1
                    self.last_metrics.fallback_reason = fallback_reason

        with self.tracer.span("scan") as scan_span, StageTimer(
            self.last_metrics, "scan", scan_span
        ):
            env.materialize()
            if scan_span is not None:
                scan_span.attributes["rows"] = len(env.rows)
        rows = env.rows
        with self.tracer.span("project") as project_span:
            if select.where is not None:
                predicate = compile_row_expression(
                    select.where, binder.resolve, self._scalar_registry
                )
                rows = [row for row in rows if predicate(row) is True]
            compiled = [
                compile_row_expression(
                    item.expression, binder.resolve, self._scalar_registry
                )
                for item in items
            ]
            out_rows = [tuple(fn(row) for fn in compiled) for row in rows]
            if project_span is not None:
                if fallback_reason is None:
                    project_span.attributes["strategy"] = "row"
                else:
                    project_span.attributes["strategy"] = "row (fallback)"
                    project_span.attributes["fallback_reason"] = fallback_reason
                project_span.attributes["rows"] = len(out_rows)
        out_columns = [
            BoundColumn(None, output_name(item, position))
            for position, item in enumerate(items)
        ]
        self._cost.charge_spool_rows(len(out_rows) * env.row_scale, len(out_columns))
        result = Relation(
            columns=out_columns, rows=out_rows, row_scale=env.row_scale
        )
        # ORDER BY may reference source columns not in the select list.
        order_context = _OrderContext(rows, binder, None)
        return result, order_context

    def _project_payloads(
        self,
        select: "ast.Select | None",
        plan: VectorizedSelectPlan,
        partition_ids: Sequence[int],
    ) -> "list[dict] | None":
        """Process-pool descriptors for a block-wise projection, or None
        to keep it in-process.  Workers re-plan the SELECT against a
        schema shim with the same planner, so the compiled block
        functions are recreated (closures don't pickle) yet identical."""
        table = plan.table
        published = self._published_for_process(table)
        if published is None or select is None:
            return None
        expressions: list[ast.Expression] = [
            item.expression for item in select.items
        ]
        if select.where is not None:
            expressions.append(select.where)
        expressions.extend(expr for expr, _ in select.order_by)
        base = {
            "kind": "project",
            "fingerprint": uuid.uuid4().hex,
            "select": select,
            "table_name": table.name,
            "schema": table.schema,
            "scalar_udfs": self._shippable_scalar_udfs(expressions),
            "cached": not published["fresh"],
        }
        return [
            {
                **base,
                "block": (
                    published["root"],
                    published["table"],
                    published["version"],
                    pid,
                ),
            }
            for pid in partition_ids
        ]

    def _execute_projection_vectorized(
        self,
        env: Relation,
        binder: Binder,
        items: Sequence[ast.SelectItem],
        plan: VectorizedSelectPlan,
        select: "ast.Select | None" = None,
    ) -> "tuple[Relation, _OrderContext]":
        """Run one block-wise projection: one engine task per non-empty
        partition, each materializing its column block, applying the
        WHERE truth vector, and evaluating the select items as numpy
        functions (filter first, then project — so, like the row path,
        item expressions never see filtered-out rows).

        Results concatenate in partition order, so the output row order
        equals the row path's scan order exactly.  Raw column items are
        served from the partition's Python value lists; block items
        restore NaN to None (and 1-based subscripts to int) per row.
        """
        table = plan.table
        positions = plan.positions
        where_fn = plan.where_fn
        plan_items = plan.items

        numbered = [
            (index, partition)
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        partitions = [partition for _, partition in numbered]
        faults = self.faults

        def make_task(pid, partition):
            def task() -> tuple[
                list[tuple], int, float, float, BlockCacheStats
            ]:
                scan_start = time.perf_counter()
                if faults.enabled:
                    faults.fire("block.materialize", partition=pid)
                block, stats = partition.numeric_matrix_with_cache_stats(
                    positions
                )
                project_start = time.perf_counter()
                keep_list: list[int] | None = None
                if where_fn is None:
                    sub = block
                else:
                    keep = np.flatnonzero(where_fn(block) == 1.0)
                    sub = block[keep]
                    keep_list = keep.tolist()
                columns: list[list[Any]] = []
                for item in plan_items:
                    if isinstance(item, RawColumnItem):
                        source = partition.column(item.position)
                        if keep_list is None:
                            columns.append(list(source))
                        else:
                            columns.append([source[i] for i in keep_list])
                    else:
                        values = item.fn(sub)
                        if item.integer_result:
                            columns.append(
                                [
                                    None if v != v else int(v)
                                    for v in values.tolist()
                                ]
                            )
                        else:
                            # v != v is the NaN test; NaN carried NULL.
                            columns.append(
                                [
                                    None if v != v else v
                                    for v in values.tolist()
                                ]
                            )
                out = list(zip(*columns)) if columns else []
                done = time.perf_counter()
                return (
                    out,
                    block.shape[0],
                    project_start - scan_start,
                    done - project_start,
                    stats,
                )

            return task

        tasks = [make_task(pid, p) for pid, p in numbered]
        partition_ids = [index for index, _ in numbered]
        payloads = self._project_payloads(select, plan, partition_ids)
        metrics = self.last_metrics
        out_rows: list[tuple] = []
        with self.tracer.span("project") as project_span:
            task_spans: list[Span] | None = None
            cached_blocks: list[bool] | None = None
            if self.tracer.enabled:
                # Checked before the tasks run (they populate the
                # cache), so ANALYZE shows pre-built blocks.
                cached_blocks = [
                    partition.has_cached_block(positions)
                    for partition in partitions
                ]
                task_spans = []
                results = self._engine_map(
                    tasks, task_spans, partition_ids, payloads=payloads
                )
                self.tracer.attach(task_spans)
            else:
                results = self._engine_map(
                    tasks, partition_ids=partition_ids, payloads=payloads
                )
            metrics.parallel_tasks += len(partitions)
            for index, result in enumerate(results):
                rows, scanned, scan_seconds, project_seconds, stats = result
                metrics.scan_seconds += scan_seconds
                metrics.project_seconds += project_seconds
                metrics.rows_processed += scanned
                metrics.partitions_processed += 1
                # Each task reports its own block-cache outcome, so the
                # statement totals are assembled from per-task locals in
                # partition order — immune to a straggler task from
                # another statement racing the shared partition
                # counters.
                self._fold_cache_stats(stats)
                if task_spans is not None:
                    span = task_spans[index]
                    span.attributes["partition"] = numbered[index][0]
                    span.attributes["rows"] = len(rows)
                    span.attributes["strategy"] = "vectorized-scan"
                    if cached_blocks is not None:
                        span.attributes["cached_block"] = cached_blocks[index]
                    span.children.append(Span("scan", seconds=scan_seconds))
                    span.children.append(
                        Span("project", seconds=project_seconds)
                    )
                out_rows.extend(rows)
            if project_span is not None:
                project_span.attributes["strategy"] = "vectorized-scan"
                project_span.attributes["rows"] = len(out_rows)
        out_columns = [
            BoundColumn(None, output_name(item, position))
            for position, item in enumerate(items)
        ]
        self._cost.charge_spool_rows(
            len(out_rows) * env.row_scale, len(out_columns)
        )
        result = Relation(
            columns=out_columns, rows=out_rows, row_scale=env.row_scale
        )
        # The planner guaranteed ORDER BY resolves against the output
        # columns, so no pre-projection rows are ever needed.
        return result, _OrderContext([], binder, None)

    def _expand_stars(
        self, items: Sequence[ast.SelectItem], binder: Binder
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                for position in binder.positions_for_star(item.expression.table):
                    column = binder.columns[position]
                    expanded.append(
                        ast.SelectItem(ast.ColumnRef(column.name, column.binding))
                    )
            else:
                expanded.append(item)
        return expanded

    # ----------------------------------------------------------- aggregation
    def _collect_aggregates(self, select: ast.Select) -> list[AggregateCall]:
        expressions = [item.expression for item in select.items]
        if select.having is not None:
            expressions.append(select.having)
        calls = find_aggregates(expressions, self._catalog.is_aggregate)
        # ORDER BY may sort on an aggregate that is not selected
        # (``ORDER BY count(*)``); those must be computed too.  Only
        # when the query already aggregates — a bare projection cannot
        # be turned into an aggregate by its ORDER BY.
        if (calls or select.group_by) and select.order_by:
            order_expressions = list(expressions) + [
                expr for expr, _ in select.order_by
            ]
            calls = find_aggregates(
                order_expressions, self._catalog.is_aggregate
            )
        return calls

    def _aggregate_object(self, name: str) -> AggregateFunction | AggregateUdf:
        factory = AGGREGATE_BUILTINS.get(name.lower())
        if factory is not None:
            return factory()
        udf = self._catalog.aggregate_udf(name)
        if udf is None:
            raise PlanningError(f"unknown aggregate {name!r}")
        return udf

    def _execute_aggregate(
        self,
        select: ast.Select,
        env: Relation,
        aggregate_calls: list[AggregateCall],
    ) -> "tuple[Relation, _OrderContext]":
        binder = Binder(env.columns)
        group_exprs = list(select.group_by)

        aggregates = [
            _AggregateSpec(call, self._aggregate_object(call.name), binder, self)
            for call in aggregate_calls
        ]
        group_fns = [
            compile_row_expression(expr, binder.resolve, self._scalar_registry)
            for expr in group_exprs
        ]

        where_fn = (
            compile_row_expression(select.where, binder.resolve, self._scalar_registry)
            if select.where is not None
            else None
        )

        served = self._serve_from_summary_cache(select, env, aggregates)
        if served is not None:
            # The cache (or its incremental watermark refresh) already
            # charged exactly the rows it re-read, so the per-row
            # aggregation charges are skipped along with the scan.
            groups = {(): [served]}
        else:
            groups = self._accumulate_groups(
                env,
                binder,
                aggregates,
                group_exprs,
                group_fns,
                where_fn,
                where_expr=select.where,
            )

            self._charge_aggregate_costs(select, env, aggregates, len(groups))

        return self._finalize_aggregate(select, aggregates, group_exprs, groups)

    def _finalize_aggregate(
        self,
        select: ast.Select,
        aggregates: list["_AggregateSpec"],
        group_exprs: list[ast.Expression],
        groups: dict[tuple, list[Any]],
    ) -> "tuple[Relation, _OrderContext]":
        """Phase 4: finalize group states and project the result rows.

        Shared by serial execution and ``execute_batch`` — a batched
        statement's states take exactly this path, so the only thing the
        batch changes is how the states were *accumulated*.
        """
        # Build the post-aggregation environment and rewrite select items.
        replacements: dict[str, ast.Expression] = {}
        post_columns: list[BoundColumn] = []
        for index, expr in enumerate(group_exprs):
            name = f"__g{index}"
            replacements[ast.render(expr)] = ast.ColumnRef(name)
            post_columns.append(BoundColumn(None, name))
        for index, spec in enumerate(aggregates):
            name = f"__a{index}"
            replacements[spec.call.key] = ast.ColumnRef(name)
            post_columns.append(BoundColumn(None, name))
        post_binder = Binder(post_columns)

        out_columns = [
            BoundColumn(None, output_name(item, position))
            for position, item in enumerate(select.items)
        ]
        item_fns = []
        for item in select.items:
            rewritten = substitute(item.expression, replacements)
            self._check_no_raw_columns(rewritten, post_binder)
            item_fns.append(
                compile_row_expression(
                    rewritten, post_binder.resolve, self._scalar_registry
                )
            )
        having_fn = None
        if select.having is not None:
            rewritten = substitute(select.having, replacements)
            having_fn = compile_row_expression(
                rewritten, post_binder.resolve, self._scalar_registry
            )

        self.last_metrics.groups += len(groups)
        out_rows: list[tuple] = []
        post_rows: list[tuple] = []
        # Projection of an aggregate query is fused into finalization
        # (one pass packs states and builds output rows), so ANALYZE
        # shows its time under the finalize span, not a project span.
        with self.tracer.span("finalize") as finalize_span, StageTimer(
            self.last_metrics, "finalize", finalize_span
        ):
            for key, states in groups.items():
                finalized = tuple(
                    spec.finalize(state) for spec, state in zip(aggregates, states)
                )
                post_row = key + finalized
                if having_fn is not None and having_fn(post_row) is not True:
                    continue
                post_rows.append(post_row)
                out_rows.append(tuple(fn(post_row) for fn in item_fns))

        self._cost.charge_spool_result(max(len(out_rows), 1), len(out_columns))
        result = Relation(columns=out_columns, rows=out_rows, row_scale=1.0)

        def rewrite(expression: ast.Expression) -> ast.Expression:
            rewritten = substitute(expression, replacements)
            self._check_no_raw_columns(rewritten, post_binder)
            return rewritten

        return result, _OrderContext(post_rows, post_binder, rewrite)

    def _check_no_raw_columns(
        self, expression: ast.Expression, post_binder: Binder
    ) -> None:
        """After substitution, any remaining column ref must be a synthetic
        group/aggregate column — otherwise the query selected a column
        that is neither aggregated nor in GROUP BY."""
        for node in ast.walk(expression):
            if isinstance(node, ast.ColumnRef):
                if not any(column.matches(node) for column in post_binder.columns):
                    raise PlanningError(
                        f"column {node.display()!r} must appear in GROUP BY "
                        "or inside an aggregate"
                    )

    # ------------------------------------------------------ summary cache
    def _static_summary_cache_target(
        self, select: ast.Select
    ) -> "tuple[Table, list[str], Any] | None":
        """Statically decide whether *select* is one cacheable summary call.

        Eligible shape: a grand aggregate (no GROUP BY / WHERE / HAVING /
        joins) over exactly one base table, whose single aggregate is a
        ``summary_cacheable`` UDF called in the list form — a leading
        integer literal ``d`` followed by ``d`` numeric column
        references.  Returns ``(table, dimension names, matrix type)``
        or ``None``; never mutates cache state.
        """
        cache = self.summary_cache
        if cache is None or not getattr(cache, "enabled", False):
            return None
        if (
            select.group_by
            or select.where is not None
            or select.having is not None
            or select.joins
            or len(select.from_sources) != 1
        ):
            return None
        source = select.from_sources[0]
        if not isinstance(source, ast.TableName):
            return None
        if self._catalog.has_view(source.name) or not self._catalog.has_table(
            source.name
        ):
            return None
        table = self._catalog.table(source.name)
        calls = self._collect_aggregates(select)
        if len(calls) != 1:
            return None
        udf = self._catalog.aggregate_udf(calls[0].name)
        if udf is None or not getattr(udf, "summary_cacheable", False):
            return None
        matrix_type = getattr(udf, "matrix_type", None)
        if matrix_type is None:
            return None
        args = calls[0].call.args
        if len(args) < 2:
            return None
        first = args[0]
        if (
            not isinstance(first, ast.Literal)
            or isinstance(first.value, bool)
            or not isinstance(first.value, int)
            or first.value != len(args) - 1
        ):
            return None
        dimensions: list[str] = []
        for arg in args[1:]:
            if not isinstance(arg, ast.ColumnRef):
                return None
            try:
                column = table.schema.column(arg.name)
            except SchemaError:
                return None
            if not column.sql_type.is_numeric:
                return None
            dimensions.append(column.name)
        return table, dimensions, matrix_type

    def _serve_from_summary_cache(
        self,
        select: ast.Select,
        env: Relation,
        aggregates: list["_AggregateSpec"],
    ) -> "Any | None":
        """Serve a cacheable summary statement without a full scan.

        Returns a synthesized aggregate state carrying the cached
        :class:`~repro.core.summary.SummaryStatistics` (finalize then
        produces the exact payload a scan would), or ``None`` to stay on
        the scan path.  A cache miss still builds and stores the entry —
        the statement pays its one scan and every repeat is free.
        """
        target = self._static_summary_cache_target(select)
        if target is None:
            return None
        table, dimensions, matrix_type = target
        if env.base_table is not table or env._materialized:
            return None
        if len(aggregates) != 1:
            return None
        udf = aggregates[0].aggregate
        if not hasattr(udf, "state_from_stats"):
            return None
        with self.tracer.span("summary-cache") as span:
            stats, hit, refreshed = self.summary_cache.lookup(
                table.name, dimensions, matrix_type
            )
            metrics = self.last_metrics
            if hit:
                metrics.summary_cache_hits += 1
                metrics.scans_saved += 1
            else:
                metrics.summary_cache_misses += 1
            metrics.rows_scanned += refreshed
            if span is not None:
                span.attributes["table"] = table.name
                span.attributes["columns"] = ",".join(dimensions)
                span.attributes["hit"] = hit
                span.attributes["rows_refreshed"] = refreshed
        return udf.state_from_stats(stats)

    def _summary_cache_note(self, select: ast.Select) -> "str | None":
        """The EXPLAIN annotation for a cache-eligible statement, from a
        non-mutating probe of the cache's current state."""
        target = self._static_summary_cache_target(select)
        if target is None:
            return None
        table, dimensions, matrix_type = target
        status, pending = self.summary_cache.probe(
            table.name, dimensions, matrix_type
        )
        if status == "hit":
            return (
                "summary-cache hit: (n, L, Q) served from cache, "
                "0 rows scanned"
            )
        if status == "stale":
            return (
                "summary-cache hit (stale): incremental refresh reads "
                f"{pending} appended rows"
            )
        return "summary-cache miss: this scan warms the cache"

    # ------------------------------------------------------ factorized joins
    def _try_factorized_select(self, select: ast.Select) -> "Relation | None":
        """Run *select* factorized if the planner proves it safe.

        Returns ``None`` to continue on the materializing join path —
        either the pass refused (``last_factorize_decision.reason``
        says why) or a run-time assumption failed mid-build (e.g. a
        duplicated dimension primary key) and the statement degraded
        gracefully, exactly like a vectorized→row fallback.
        """
        decision = plan_factorize(self._catalog, select)
        self.last_factorize_decision = decision
        if not decision.factorized:
            return None
        snapshot = self.last_metrics.to_dict()
        try:
            return self._execute_factorized_aggregate(select, decision)
        except fcore.FactorizedFallback as exc:
            return self._degrade_factorized(snapshot, exc)
        except PartitionExecutionError as exc:
            # A guard tripping *inside* a partition task (e.g. a
            # duplicate dimension key found while folding one
            # partition's map) surfaces wrapped; unwrap it so the
            # statement still degrades instead of failing.  Genuine
            # task failures (faults, crashes) stay typed errors.
            if isinstance(exc.first_error, fcore.FactorizedFallback):
                return self._degrade_factorized(snapshot, exc.first_error)
            raise

    def _degrade_factorized(
        self, snapshot: "dict[str, Any]", exc: Exception
    ) -> None:
        self._note_failed_span("aggregate", exc)
        self._rollback_metrics(snapshot)
        self.last_metrics.fallbacks += 1
        self.last_metrics.fallback_reason = _describe_failure(exc)
        return None

    def _execute_factorized_aggregate(
        self, select: ast.Select, decision: FactorizeDecision
    ) -> Relation:
        """Answer a star-join aggregate from per-base-table partials.

        One partition-parallel pass per dimension table builds key →
        feature maps; one pass over the fact table folds FK-grouped
        partials; the combine step weights dimension vectors by the
        fact-side multiplicities (:mod:`repro.core.factorized`).  The
        joined table never exists: rows scanned are Σ|base tables|.
        """
        metrics = self.last_metrics
        fact = self._catalog.table(decision.fact_table)
        dim_tables = [self._catalog.table(dim.table) for dim in decision.dims]
        # Binder over the *virtual* joined schema (fact columns, then
        # each dimension's) — aggregate specs resolve against it
        # without any joined relation existing.
        columns = [
            BoundColumn(decision.fact_binding, column.name)
            for column in fact.schema.columns
        ]
        for dim, table in zip(decision.dims, dim_tables):
            columns.extend(
                BoundColumn(dim.binding, column.name)
                for column in table.schema.columns
            )
        binder = Binder(columns)
        aggregate_calls = self._collect_aggregates(select)
        aggregates = [
            _AggregateSpec(call, self._aggregate_object(call.name), binder, self)
            for call in aggregate_calls
        ]
        plan = _resolve_factorized_positions(
            decision, fact, dim_tables, aggregates
        )

        base_tables = [fact, *dim_tables]
        cache = self.summary_cache
        cache_key = None
        if (
            decision.shape == "summary"
            and cache is not None
            and getattr(cache, "enabled", False)
            and hasattr(aggregates[0].aggregate, "state_from_stats")
        ):
            cache_key = _join_cache_key(decision)
            served = cache.lookup_join(cache_key, base_tables)
            if served is not None:
                stats, rows_avoided = served
                with self.tracer.span("summary-cache") as span:
                    if span is not None:
                        span.attributes["hit"] = True
                        span.attributes["factorized"] = True
                        span.attributes["tables"] = ",".join(
                            table.name for table in base_tables
                        )
                metrics.summary_cache_hits += 1
                metrics.scans_saved += len(base_tables)
                metrics.factorized_joins += 1
                metrics.rows_join_avoided += rows_avoided
                states = [aggregates[0].aggregate.state_from_stats(stats)]
                result, order_context = self._finalize_aggregate(
                    select, aggregates, [], {(): states}
                )
                return self._apply_order_limit(select, result, order_context)

        for table in base_tables:
            self._cost.charge_scan(table.nominal_rows, table.width)

        dim_maps: "list[tuple[dict, set]]" = []
        dim_values: "list[dict]" = []
        dim_raws: "list[dict]" = []
        for dim_index, table in enumerate(dim_tables):
            values, null_any, raw = self._build_factorized_dim_map(
                table,
                plan.dim_key_positions[dim_index],
                plan.dim_feature_positions[dim_index],
            )
            dim_maps.append((values, null_any))
            dim_values.append(values)
            dim_raws.append(raw)

        with self.tracer.span("aggregate") as strategy_span:
            if strategy_span is not None:
                strategy_span.attributes["strategy"] = "factorized-join"
            states, stats = self._fold_factorized_fact(
                decision, plan, fact, aggregates, dim_maps, dim_values, dim_raws
            )

        if cache_key is not None:
            metrics.summary_cache_misses += 1

        base_rows = sum(table.row_count for table in base_tables)
        would_read = 0
        outer_rows = fact.row_count
        for table in dim_tables:
            would_read += outer_rows * (1 + table.row_count)
        avoided = max(0, would_read - base_rows)
        metrics.factorized_joins += 1
        metrics.rows_join_avoided += avoided
        if cache_key is not None and stats is not None:
            cache.store_join(cache_key, base_tables, stats, avoided)

        self._charge_factorized_costs(select, aggregates, fact, dim_tables)
        result, order_context = self._finalize_aggregate(
            select, aggregates, [], {(): states}
        )
        return self._apply_order_limit(select, result, order_context)

    def _fold_factorized_fact(
        self,
        decision: FactorizeDecision,
        plan: "_FactorizedPositions",
        fact: Table,
        aggregates: list["_AggregateSpec"],
        dim_maps: "list[tuple[dict, set]]",
        dim_values: "list[dict]",
        dim_raws: "list[dict]",
    ) -> "tuple[list[Any], Any]":
        """Fact-side fold + combine; returns (states, stats-or-None)."""
        metrics = self.last_metrics
        shape = decision.shape
        key_positions = plan.fact_key_positions
        if shape == "summary":
            udf = aggregates[0].aggregate
            matrix_type = decision.matrix_type
            pairs = fcore.fact_pairs(len(plan.fact_positions), matrix_type)

            def fold(rows):
                return fcore.fold_summary_fact_partition(
                    rows, key_positions, dim_maps, plan.fact_positions, pairs
                )

            partials = self._factorized_partition_fold(
                fact,
                fold,
                process_fold=(
                    "summary",
                    key_positions,
                    dim_maps,
                    plan.fact_positions,
                    pairs,
                ),
            )
            with self.tracer.span("merge") as merge_span, StageTimer(
                metrics, "merge", merge_span
            ):
                merged = fcore.merge_summary_fact_partitions(
                    partials, len(plan.fact_positions), len(pairs)
                )
                stats = fcore.combine_summary(
                    merged, plan.sources, dim_values, matrix_type
                )
            return [udf.state_from_stats(stats)], stats
        if shape == "fused":
            udf = aggregates[0].aggregate
            tables = udf.factorized_tables(plan.sources, dim_values)

            def fold(rows):
                return fcore.fold_fused_fact_partition(
                    rows, key_positions, dim_maps, plan.fact_positions, tables
                )

            partials = self._factorized_partition_fold(
                fact,
                fold,
                fire_site=getattr(udf, "fault_site", None),
                fire_udf=aggregates[0].call.name,
                process_fold=(
                    "fused",
                    key_positions,
                    dim_maps,
                    plan.fact_positions,
                    tables,
                ),
            )
            with self.tracer.span("merge") as merge_span, StageTimer(
                metrics, "merge", merge_span
            ):
                merged = fcore.merge_fused_fact_partitions(
                    partials,
                    tables["k"],
                    len(plan.fact_positions),
                    len(dim_maps),
                )
                counts, linear, quadratic, extra = fcore.combine_fused(
                    merged, plan.sources, dim_values, tables["k"]
                )
            state = udf.state_from_factorized(counts, linear, quadratic, extra)
            return [state], None
        # builtins: COUNT(*) / SUM partials in Python arithmetic.
        specs = plan.builtin_specs

        def fold(rows):
            return fcore.fold_builtin_fact_partition(
                rows, key_positions, dim_maps, dim_raws, specs
            )

        partials = self._factorized_partition_fold(
            fact,
            fold,
            process_fold=(
                "builtins",
                key_positions,
                dim_maps,
                dim_raws,
                specs,
            ),
        )
        with self.tracer.span("merge") as merge_span, StageTimer(
            metrics, "merge", merge_span
        ):
            _matched, merged_states = fcore.merge_builtin_partials(
                partials, specs
            )
        states: list[Any] = []
        for index, spec in enumerate(specs):
            if spec[0] == "count_star":
                states.append(merged_states[index])
            else:
                states.append(merged_states[index][0])
        return states, None

    def _build_factorized_dim_map(
        self,
        table: Table,
        key_position: int,
        feature_positions: "list[int]",
    ) -> "tuple[dict, set, dict]":
        """One partition-parallel pass over a dimension table.

        The wrapper span is named ``dim-scan`` (not ``scan``) on
        purpose: per-task ``scan`` child spans under the task spans
        already carry the measured scan seconds, and
        ``Span.total_seconds("scan")`` must keep reconciling exactly
        with ``metrics.scan_seconds``.
        """
        with self.tracer.span("dim-scan") as span:

            def fold(rows):
                return fcore.fold_dim_partition(
                    rows, key_position, feature_positions
                )

            partials = self._factorized_partition_fold(
                table,
                fold,
                process_fold=("dim", key_position, feature_positions),
            )
            merged = fcore.merge_dim_partitions(partials)
            if span is not None:
                span.attributes["table"] = table.name
                span.attributes["rows"] = table.row_count
                span.attributes["keys"] = len(merged[0])
        return merged

    def _factorized_partition_fold(
        self,
        table: Table,
        fold_rows: "Callable[[list[tuple]], Any]",
        fire_site: "str | None" = None,
        fire_udf: "str | None" = None,
        process_fold: "tuple | None" = None,
    ) -> list[Any]:
        """Fan *fold_rows* out as one idempotent task per partition.

        Partials return strictly in partition order; per-task times and
        row counts fold into the statement metrics exactly like the
        single-table row-partitioned path, so worker count never
        changes results or bookkeeping.
        """
        numbered = [
            (index, partition)
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        faults = self.faults

        def make_task(pid, partition):
            def task() -> "tuple[Any, int, float, float]":
                scan_start = time.perf_counter()
                if faults.enabled:
                    faults.fire("partition.scan", partition=pid)
                rows = list(partition.rows())
                if fire_site is not None and faults.enabled:
                    faults.fire(fire_site, partition=pid, udf=fire_udf)
                fold_start = time.perf_counter()
                partial = fold_rows(rows)
                done = time.perf_counter()
                return (
                    partial,
                    len(rows),
                    fold_start - scan_start,
                    done - fold_start,
                )

            return task

        tasks = [make_task(pid, partition) for pid, partition in numbered]
        partition_ids = [index for index, _ in numbered]
        payloads: "list[dict] | None" = None
        if process_fold is not None:
            published = self._published_for_process(table)
            if published is not None:
                base = {
                    "kind": "fact-fold",
                    "fingerprint": uuid.uuid4().hex,
                    "fold": process_fold,
                    "fire_site": fire_site,
                    "fire_udf": fire_udf,
                }
                payloads = [
                    {
                        **base,
                        "block": (
                            published["root"],
                            published["table"],
                            published["version"],
                            pid,
                        ),
                    }
                    for pid in partition_ids
                ]
        task_spans: "list[Span] | None" = None
        if self.tracer.enabled:
            task_spans = []
            results = self._engine_map(
                tasks, task_spans, partition_ids, payloads=payloads
            )
            self.tracer.attach(task_spans)
        else:
            results = self._engine_map(
                tasks, partition_ids=partition_ids, payloads=payloads
            )
        metrics = self.last_metrics
        metrics.parallel_tasks += len(tasks)
        partials: list[Any] = []
        for index, result in enumerate(results):
            partial, row_count, scan_seconds, accumulate_seconds = result
            metrics.scan_seconds += scan_seconds
            metrics.accumulate_seconds += accumulate_seconds
            metrics.rows_processed += row_count
            if row_count:
                metrics.partitions_processed += 1
            if task_spans is not None:
                span = task_spans[index]
                span.attributes["partition"] = partition_ids[index]
                span.attributes["rows"] = row_count
                span.children.append(Span("scan", seconds=scan_seconds))
                span.children.append(
                    Span("accumulate", seconds=accumulate_seconds)
                )
            partials.append(partial)
        return partials

    def _charge_factorized_costs(
        self,
        select: ast.Select,
        aggregates: list["_AggregateSpec"],
        fact: Table,
        dim_tables: "list[Table]",
    ) -> None:
        """Analytical charges for the factorized path.

        The select list evaluates once per *fact* row (the aggregate
        argument gathering); each base table's scan was charged up
        front, and the per-partition merge covers every base table's
        partials.
        """
        rows = fact.nominal_rows
        charged = [item.expression for item in select.items]
        self._cost.charge_sql_evaluation(rows, self._expression_nodes(charged))
        partitions = fact.partition_count + sum(
            table.partition_count for table in dim_tables
        )
        for spec in aggregates:
            if spec.is_builtin:
                continue
            udf = spec.aggregate
            assert isinstance(udf, AggregateUdf)
            profile = udf.cost_per_row(len(spec.call.call.args))
            self._cost.charge_udf_rows(
                rows,
                list_params=profile.list_params,
                arith_ops=profile.arith_ops,
            )
            if profile.string_chars:
                self._cost.charge_udf_string_transfer(rows, profile.string_chars)
            self._cost.charge_udf_merge(partitions, udf.state_value_count())
            self._cost.charge_udf_return(udf.state_value_count())

    def _factorized_cache_note(self, select: ast.Select) -> "str | None":
        """EXPLAIN annotation for a join-cacheable factorized statement."""
        cache = self.summary_cache
        if cache is None or not getattr(cache, "enabled", False):
            return None
        if not select.joins:
            return None
        decision = plan_factorize(self._catalog, select)
        if not decision.factorized or decision.shape != "summary":
            return None
        tables = [self._catalog.table(decision.fact_table)] + [
            self._catalog.table(dim.table) for dim in decision.dims
        ]
        status = cache.probe_join(_join_cache_key(decision), tables)
        if status == "hit":
            return (
                "summary-cache hit: factorized (n, L, Q) served from "
                "cache, 0 rows scanned"
            )
        return (
            "summary-cache miss: this factorized build warms the cache "
            "(keyed on every base table's version)"
        )

    def _accumulate_groups(
        self,
        env: Relation,
        binder: Binder,
        aggregates: list["_AggregateSpec"],
        group_exprs: list[ast.Expression],
        group_fns: list[Callable[[tuple], Any]],
        where_fn: Callable[[tuple], Any] | None,
        where_expr: "ast.Expression | None" = None,
    ) -> dict[tuple, list[Any]]:
        groups: dict[tuple, list[Any]] = {}
        if not group_exprs:
            # SQL semantics: a grand aggregate always yields one row.
            groups[()] = [spec.initialize() for spec in aggregates]

        use_vector = (
            env.base_table is not None
            and not env._materialized
            and where_fn is None
            and all(spec.vector_ready for spec in aggregates)
            and self._vector_group_keys_ready(group_exprs, binder)
            and self._referenced_columns_numeric(
                env, aggregates, group_exprs, binder
            )
        )
        if use_vector:
            snapshot = self.last_metrics.to_dict()
            try:
                with self.tracer.span("aggregate") as span:
                    self._accumulate_vectorized(
                        env, binder, aggregates, group_exprs, groups
                    )
                    if span is not None:
                        span.attributes["strategy"] = "vectorized"
                        span.attributes["groups"] = len(groups)
                return groups
            except Exception as exc:
                # Graceful degradation: a failing batched kernel (or an
                # injected fault / task timeout under it) retries on the
                # row path once.  Partially merged group state and the
                # failed attempt's metrics are discarded first, so the
                # retry starts from the same blank slate serial
                # execution would.
                fallback_reason = _describe_failure(exc)
                self._note_failed_span("aggregate", exc)
                self._rollback_metrics(snapshot)
                self.last_metrics.fallbacks += 1
                self.last_metrics.fallback_reason = fallback_reason
                groups.clear()
                if not group_exprs:
                    groups[()] = [spec.initialize() for spec in aggregates]
            with self.tracer.span("aggregate") as span:
                self._accumulate_rows_partitioned(
                    env.base_table,
                    aggregates,
                    group_fns,
                    where_fn,
                    groups,
                    binder=binder,
                    group_exprs=group_exprs,
                    where_expr=where_expr,
                )
                if span is not None:
                    span.attributes["strategy"] = "row-partitioned (fallback)"
                    span.attributes["fallback_reason"] = fallback_reason
                    span.attributes["groups"] = len(groups)
            return groups

        if env.base_table is not None and not env._materialized:
            # Partitioned row path: one partial state per partition (the
            # paper's per-AMP accumulation), merged in partition order —
            # runs concurrently when the engine has workers.
            with self.tracer.span("aggregate") as span:
                self._accumulate_rows_partitioned(
                    env.base_table,
                    aggregates,
                    group_fns,
                    where_fn,
                    groups,
                    binder=binder,
                    group_exprs=group_exprs,
                    where_expr=where_expr,
                )
                if span is not None:
                    span.attributes["strategy"] = "row-partitioned"
                    span.attributes["groups"] = len(groups)
            return groups

        # Materialized relations (joins, derived tables, views) have no
        # partition structure; accumulate serially into a single state.
        env.materialize()
        with self.tracer.span("aggregate") as span:
            with self.tracer.span("accumulate") as accumulate_span, StageTimer(
                self.last_metrics, "accumulate", accumulate_span
            ):
                for row in env.rows:
                    if where_fn is not None and where_fn(row) is not True:
                        continue
                    key = tuple(fn(row) for fn in group_fns)
                    states = groups.get(key)
                    if states is None:
                        states = [spec.initialize() for spec in aggregates]
                        groups[key] = states
                    for index, spec in enumerate(aggregates):
                        states[index] = spec.accumulate_row(states[index], row)
                    self.last_metrics.rows_processed += 1
            if span is not None:
                span.attributes["strategy"] = "row-serial"
                span.attributes["groups"] = len(groups)
        return groups

    def _accumulate_rows_partitioned(
        self,
        table: Table,
        aggregates: list["_AggregateSpec"],
        group_fns: list[Callable[[tuple], Any]],
        where_fn: Callable[[tuple], Any] | None,
        groups: dict[tuple, list[Any]],
        binder: "Binder | None" = None,
        group_exprs: "list[ast.Expression] | None" = None,
        where_expr: "ast.Expression | None" = None,
    ) -> None:
        """Row-path accumulation with one partial-state dict per partition.

        Each task folds its partition's rows into private states; the
        partials merge in partition order, so group keys keep their
        scan-order first appearance and results match any worker count.
        """
        numbered = [
            (index, partition)
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        partitions = [partition for _, partition in numbered]
        faults = self.faults

        def make_task(pid, partition):
            def task() -> tuple[dict[tuple, list[Any]], int, float, float]:
                scan_start = time.perf_counter()
                if faults.enabled:
                    faults.fire("partition.scan", partition=pid)
                rows = list(partition.rows())
                accumulate_start = time.perf_counter()
                local, folded = _fold_rows_into(
                    rows, aggregates, group_fns, where_fn
                )
                done = time.perf_counter()
                return (
                    local,
                    folded,
                    accumulate_start - scan_start,
                    done - accumulate_start,
                )

            return task

        tasks = [make_task(pid, p) for pid, p in numbered]
        partition_ids = [index for index, _ in numbered]
        payloads = self._agg_row_payloads(
            table, aggregates, binder, group_exprs, where_expr, where_fn,
            partition_ids,
        )
        task_spans: list[Span] | None = None
        if self.tracer.enabled:
            task_spans = []
            results = self._engine_map(
                tasks, task_spans, partition_ids, payloads=payloads
            )
            self.tracer.attach(task_spans)
        else:
            results = self._engine_map(
                tasks, partition_ids=partition_ids, payloads=payloads
            )
        self.last_metrics.parallel_tasks += len(partitions)
        self._merge_partition_partials(
            results,
            aggregates,
            groups,
            task_spans=task_spans,
            partition_ids=partition_ids,
        )

    def _agg_row_payloads(
        self,
        table: Table,
        aggregates: list["_AggregateSpec"],
        binder: "Binder | None",
        group_exprs: "list[ast.Expression] | None",
        where_expr: "ast.Expression | None",
        where_fn: Callable[[tuple], Any] | None,
        partition_ids: Sequence[int],
    ) -> "list[dict] | None":
        """Process-pool descriptors for a row-path aggregate fan-out, or
        None to keep the fan-out on in-process closures.  A descriptor
        ships only ASTs, aggregate objects, and a column-resolution map
        — the rows travel through the mmap'd columnar block, never
        through pickle."""
        if binder is None or group_exprs is None:
            return None
        if where_fn is not None and where_expr is None:
            # The compiled WHERE came from somewhere we cannot see the
            # expression of; workers could not recompile it.
            return None
        published = self._published_for_process(table)
        if published is None:
            return None
        expressions: list[ast.Expression] = [
            spec.call.call for spec in aggregates
        ]
        expressions.extend(group_exprs)
        if where_expr is not None:
            expressions.append(where_expr)
        resolve = {
            (ref.table, ref.name.lower()): binder.resolve(ref)
            for ref in referenced_columns_of_all(expressions)
        }
        base = {
            "kind": "agg-row",
            "fingerprint": uuid.uuid4().hex,
            "calls": [spec.call for spec in aggregates],
            "aggregates": [spec.aggregate for spec in aggregates],
            "group_exprs": list(group_exprs),
            "where": where_expr,
            "resolve": resolve,
            "scalar_udfs": self._shippable_scalar_udfs(expressions),
        }
        return [
            {
                **base,
                "block": (
                    published["root"],
                    published["table"],
                    published["version"],
                    pid,
                ),
            }
            for pid in partition_ids
        ]

    def _merge_partition_partials(
        self,
        results: Sequence[tuple[dict[tuple, list[Any]], int, float, float]],
        aggregates: list["_AggregateSpec"],
        groups: dict[tuple, list[Any]],
        task_spans: "list[Span] | None" = None,
        partition_ids: "list[int] | None" = None,
        cached_blocks: "list[bool] | None" = None,
    ) -> None:
        """Fold per-partition (partials, rows, scan s, accumulate s) task
        results into *groups*, strictly in partition order.

        Under tracing, each engine-built task span (same order as
        *results*) gains its partition id, row count and scan/accumulate
        child spans built from the *same* perf-counter deltas added to
        the metrics here — summed in the same order, so the span totals
        and the stage totals are the identical floats, not approximations.
        """
        metrics = self.last_metrics
        with self.tracer.span("merge") as merge_span, StageTimer(
            metrics, "merge", merge_span
        ):
            for index, result in enumerate(results):
                local, folded, scan_seconds, accumulate_seconds = result
                metrics.scan_seconds += scan_seconds
                metrics.accumulate_seconds += accumulate_seconds
                metrics.rows_processed += folded
                if local:
                    metrics.partitions_processed += 1
                if task_spans is not None:
                    span = task_spans[index]
                    if partition_ids is not None:
                        span.attributes["partition"] = partition_ids[index]
                    span.attributes["rows"] = folded
                    if cached_blocks is not None:
                        span.attributes["cached_block"] = cached_blocks[index]
                    span.children.append(Span("scan", seconds=scan_seconds))
                    span.children.append(
                        Span("accumulate", seconds=accumulate_seconds)
                    )
                for key, partial in local.items():
                    states = groups.get(key)
                    if states is None:
                        groups[key] = partial
                    else:
                        for position, spec in enumerate(aggregates):
                            states[position] = spec.merge(
                                states[position], partial[position]
                            )

    def _referenced_columns_numeric(
        self,
        env: Relation,
        aggregates: list["_AggregateSpec"],
        group_exprs: list[ast.Expression],
        binder: Binder,
    ) -> bool:
        """The vector path reads column blocks as float matrices, so every
        referenced base column must be numeric."""
        table = env.base_table
        assert table is not None
        expressions = [spec.call.call for spec in aggregates] + list(group_exprs)
        for ref in referenced_columns_of_all(expressions):
            position = binder.resolve(ref)
            column = table.schema.columns[position]
            if not column.sql_type.is_numeric:
                return False
        return True

    def _vector_group_keys_ready(
        self, group_exprs: list[ast.Expression], binder: Binder
    ) -> bool:
        for expr in group_exprs:
            refs = referenced_columns(expr)
            resolver = _matrix_resolver(binder, refs)
            if compile_vector_expression(expr, resolver) is None:
                return False
        return True

    def _accumulate_vectorized(
        self,
        env: Relation,
        binder: Binder,
        aggregates: list["_AggregateSpec"],
        group_exprs: list[ast.Expression],
        groups: dict[tuple, list[Any]],
    ) -> None:
        table = env.base_table
        assert table is not None
        needed = referenced_columns_of_all(
            [spec.call.call for spec in aggregates] + list(group_exprs)
        )
        resolver_map = {
            (ref.table, ref.name.lower()): index for index, ref in enumerate(needed)
        }
        positions = [binder.resolve(ref) for ref in needed]

        def matrix_resolver(ref: ast.ColumnRef) -> int:
            return resolver_map[(ref.table, ref.name.lower())]

        group_vector_fns = [
            compile_vector_expression(expr, matrix_resolver) for expr in group_exprs
        ]
        for spec in aggregates:
            spec.prepare_vector(matrix_resolver)

        numbered = [
            (index, partition)
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        partitions = [partition for _, partition in numbered]
        faults = self.faults
        # Aggregates that declare a fault site (the fused clustering
        # iteration UDFs) arm it per vectorized task, between block
        # materialization and accumulation.
        fused_udfs = [
            (site, spec.call.name)
            for spec in aggregates
            if (site := getattr(spec.aggregate, "fault_site", None))
        ]

        def make_task(pid, partition):
            def task() -> tuple[
                dict[tuple, list[Any]], int, float, float, BlockCacheStats
            ]:
                scan_start = time.perf_counter()
                if faults.enabled:
                    faults.fire("block.materialize", partition=pid)
                block, stats = partition.numeric_matrix_with_cache_stats(
                    positions
                )
                if faults.enabled:
                    for site, udf_name in fused_udfs:
                        faults.fire(site, partition=pid, udf=udf_name)
                accumulate_start = time.perf_counter()
                local = _fold_vector_block(
                    block, aggregates, group_exprs, group_vector_fns
                )
                done = time.perf_counter()
                return (
                    local,
                    block.shape[0],
                    accumulate_start - scan_start,
                    done - accumulate_start,
                    stats,
                )

            return task

        tasks = [make_task(pid, p) for pid, p in numbered]
        partition_ids = [index for index, _ in numbered]
        payloads: "list[dict] | None" = None
        published = self._published_for_process(table)
        if published is not None:
            expressions = [spec.call.call for spec in aggregates] + list(
                group_exprs
            )
            base = {
                "kind": "agg-vector",
                "fingerprint": uuid.uuid4().hex,
                "calls": [spec.call for spec in aggregates],
                "aggregates": [spec.aggregate for spec in aggregates],
                "group_exprs": list(group_exprs),
                "resolve": {
                    (ref.table, ref.name.lower()): binder.resolve(ref)
                    for ref in needed
                },
                "matrix_map": resolver_map,
                "positions": positions,
                "fused": fused_udfs,
                "scalar_udfs": self._shippable_scalar_udfs(expressions),
                "cached": not published["fresh"],
            }
            payloads = [
                {
                    **base,
                    "block": (
                        published["root"],
                        published["table"],
                        published["version"],
                        pid,
                    ),
                }
                for pid in partition_ids
            ]
        task_spans: list[Span] | None = None
        cached_blocks: list[bool] | None = None
        if self.tracer.enabled:
            # Checked before the tasks run (they populate the cache), so
            # ANALYZE shows which partitions served a pre-built block.
            cached_blocks = [
                partition.has_cached_block(positions)
                for partition in partitions
            ]
            task_spans = []
            results = self._engine_map(
                tasks, task_spans, partition_ids, payloads=payloads
            )
            self.tracer.attach(task_spans)
        else:
            results = self._engine_map(
                tasks, partition_ids=partition_ids, payloads=payloads
            )
        self.last_metrics.parallel_tasks += len(partitions)
        # Per-task cache stats merged in partition order (see the
        # projection path for why the shared partition counters are not
        # read here).
        for result in results:
            self._fold_cache_stats(result[4])
        if task_spans is not None and fused_udfs:
            # Zero-cost marker child so ANALYZE shows which tasks ran a
            # fused clustering iteration (``_operator_spans`` skips
            # spans under tasks, so pairing is unaffected).
            marker = ",".join(name for _, name in fused_udfs)
            for task_span in task_spans:
                task_span.children.append(
                    Span("fused-iteration", attributes={"udf": marker})
                )
        self._merge_partition_partials(
            [result[:4] for result in results],
            aggregates,
            groups,
            task_spans=task_spans,
            partition_ids=partition_ids,
            cached_blocks=cached_blocks,
        )

    def _charge_aggregate_costs(
        self,
        select: ast.Select,
        env: Relation,
        aggregates: list["_AggregateSpec"],
        group_count: int,
    ) -> None:
        rows = env.nominal_rows
        # Interpreted per-row evaluation of the select list (and WHERE,
        # and GROUP BY keys) — this is where the long 1+d+d²-term SQL
        # query pays, while an aggregate-UDF call is a single node.
        charged: list[ast.Expression] = [item.expression for item in select.items]
        charged.extend(select.group_by)
        if select.where is not None:
            charged.append(select.where)
        self._cost.charge_sql_evaluation(rows, self._expression_nodes(charged))
        self._charge_scalar_udf_calls(list(select.group_by), rows)
        if select.group_by:
            self._cost.charge_groupby(rows)
        groups = max(group_count, 1)
        for spec in aggregates:
            if spec.is_builtin:
                continue
            udf = spec.aggregate
            assert isinstance(udf, AggregateUdf)
            profile = udf.cost_per_row(len(spec.call.call.args))
            multiplier = 1.0
            if select.group_by:
                state_bytes = udf.state_value_count() * 8
                multiplier = self._cost.groupby_spill_multiplier(groups, state_bytes)
            # The spill multiplier models state management pressure; the
            # string pack/parse work is unaffected by it.
            self._cost.charge_udf_rows(
                rows * multiplier,
                list_params=profile.list_params,
                arith_ops=profile.arith_ops,
            )
            if profile.string_chars:
                self._cost.charge_udf_string_transfer(rows, profile.string_chars)
            partitions = (
                env.base_table.partition_count if env.base_table is not None else 1
            )
            self._cost.charge_udf_merge(
                partitions * groups, udf.state_value_count()
            )
            self._cost.charge_udf_return(udf.state_value_count() * groups)

    # -------------------------------------------------------- order and limit
    def _apply_order_limit(
        self,
        select: ast.Select,
        result: Relation,
        order_context: "_OrderContext",
    ) -> Relation:
        """Sort and truncate the output.

        ORDER BY expressions resolve in SQL's order of preference:
        an integer literal is an output position; then output columns
        (aliases); then the pre-projection environment — source columns
        not in the select list, or (after aggregation) aggregate
        expressions rewritten onto the group result.
        """
        if select.order_by:
            out_binder = Binder(result.columns)
            key_fns: list[tuple[Callable[[int], Any], bool]] = []
            out_rows = result.rows
            key_rows = order_context.rows
            for expr, ascending in select.order_by:
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                    if not 0 <= position < result.width:
                        raise PlanningError(
                            f"ORDER BY position {expr.value} out of range"
                        )
                    key_fns.append(
                        (lambda i, p=position: out_rows[i][p], ascending)
                    )
                    continue
                try:
                    fn = compile_row_expression(
                        expr, out_binder.resolve, self._scalar_registry
                    )
                    key_fns.append(
                        (lambda i, f=fn: f(out_rows[i]), ascending)
                    )
                    continue
                except PlanningError:
                    pass
                rewritten = (
                    order_context.rewrite(expr)
                    if order_context.rewrite is not None
                    else expr
                )
                fn = compile_row_expression(
                    rewritten, order_context.binder.resolve, self._scalar_registry
                )
                key_fns.append((lambda i, f=fn: f(key_rows[i]), ascending))

            with self.tracer.span("sort") as sort_span:
                order = list(range(len(out_rows)))
                for fn, ascending in reversed(key_fns):
                    order.sort(
                        key=lambda i: _sort_key(fn(i)), reverse=not ascending
                    )
                result = Relation(
                    columns=result.columns,
                    rows=[out_rows[i] for i in order],
                    row_scale=result.row_scale,
                )
                if sort_span is not None:
                    sort_span.attributes["rows"] = len(result.rows)
            self._cost.charge_sort(result.nominal_rows)
        if select.limit is not None:
            result = Relation(
                columns=result.columns,
                rows=result.rows[: select.limit],
                row_scale=result.row_scale,
            )
        return result

    # -------------------------------------------------------------- utilities
    def _scalar_registry(self, name: str) -> Callable[..., Any] | None:
        builtin = SCALAR_BUILTINS.get(name)
        if builtin is not None:
            return builtin
        return self._catalog.scalar_udf(name)

    def _charge_scalar_udf_calls(
        self, expressions: Sequence[ast.Expression], rows: float
    ) -> None:
        for expression in expressions:
            for node in ast.walk(expression):
                if isinstance(node, ast.FuncCall):
                    udf = self._catalog.scalar_udf(node.name)
                    if udf is not None:
                        profile = udf.cost_per_row(len(node.args))
                        self._cost.charge_scalar_udf_rows(
                            rows,
                            params=profile.list_params,
                            arith_ops=profile.arith_ops,
                        )

    def _expression_nodes(self, expressions: Sequence[ast.Expression]) -> int:
        """AST-node count the interpreted evaluator pays per row.

        A UDF call (scalar or aggregate) counts as a single node with
        only its non-trivial arguments descended into: UDF parameters
        are handed over on the run-time stack, so plain column refs and
        literals in the argument list cost nothing extra — the UDF's own
        per-call cost is charged separately.  Builtin calls (sum, sqrt,
        ...) are interpreted and count fully.
        """
        total = 0

        def visit(node: ast.Expression) -> None:
            nonlocal total
            total += 1
            if isinstance(node, ast.FuncCall) and not (
                node.name in SCALAR_BUILTINS or node.name in AGGREGATE_BUILTINS
            ):
                for arg in node.args:
                    if not isinstance(arg, (ast.ColumnRef, ast.Literal)):
                        visit(arg)
                return
            if isinstance(node, ast.Unary):
                visit(node.operand)
            elif isinstance(node, ast.Binary):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.FuncCall):
                for arg in node.args:
                    visit(arg)
            elif isinstance(node, ast.Case):
                for condition, result in node.whens:
                    visit(condition)
                    visit(result)
                if node.else_result is not None:
                    visit(node.else_result)
            elif isinstance(node, ast.IsNull):
                visit(node.operand)
            elif isinstance(node, ast.InList):
                visit(node.operand)
                for item in node.items:
                    visit(item)

        for expression in expressions:
            visit(expression)
        return total


@dataclass
class _OrderContext:
    """Pre-projection rows/binder for ORDER BY resolution, plus an
    optional expression rewriter (aggregate substitution)."""

    rows: list[tuple]
    binder: Binder
    rewrite: "Callable[[ast.Expression], ast.Expression] | None" = None


@dataclass
class _FactorizedPositions:
    """A FactorizeDecision bound to physical column positions.

    * ``fact_key_positions[i]`` — the fact row position of dims[i]'s FK;
    * ``dim_key_positions[i]`` / ``dim_feature_positions[i]`` — the
      dimension row positions of its PK and of the (de-duplicated)
      feature columns the aggregates read;
    * ``sources`` — per aggregate argument: ``("fact", fact_arg_index)``,
      ``("dim", dim_index, feature_index)`` or ``("const", value)``;
      ``fact_positions[fact_arg_index]`` is the fact row position;
    * ``builtin_specs`` — per aggregate call (builtins shape), with
      fact terms carrying fact row positions directly.
    """

    fact_key_positions: "list[int]"
    dim_key_positions: "list[int]"
    dim_feature_positions: "list[list[int]]"
    fact_positions: "list[int]"
    sources: "tuple"
    builtin_specs: "list[tuple]"


def _resolve_factorized_positions(
    decision: FactorizeDecision,
    fact: Table,
    dim_tables: "list[Table]",
    aggregates: list["_AggregateSpec"],
) -> _FactorizedPositions:
    """Map the decision's column names onto row positions."""
    fact_key_positions = [
        fact.schema.position_of(dim.fact_key) for dim in decision.dims
    ]
    dim_key_positions = [
        table.schema.position_of(dim.dim_key)
        for dim, table in zip(decision.dims, dim_tables)
    ]
    dim_feature_positions: "list[list[int]]" = [[] for _ in decision.dims]
    dim_feature_index: "list[dict[str, int]]" = [{} for _ in decision.dims]

    def dim_feature(dim_index: int, name: str) -> int:
        assigned = dim_feature_index[dim_index]
        index = assigned.get(name)
        if index is None:
            index = len(dim_feature_positions[dim_index])
            assigned[name] = index
            dim_feature_positions[dim_index].append(
                dim_tables[dim_index].schema.position_of(name)
            )
        return index

    fact_positions: "list[int]" = []
    sources: "list[tuple]" = []
    for source in decision.arg_sources:
        if source[0] == "fact":
            fact_positions.append(fact.schema.position_of(source[1]))
            sources.append(("fact", len(fact_positions) - 1))
        elif source[0] == "dim":
            _kind, dim_index, name = source
            sources.append(("dim", dim_index, dim_feature(dim_index, name)))
        else:
            sources.append(source)
    builtin_specs: "list[tuple]" = []
    if decision.shape == "builtins":
        for spec in aggregates:
            shape = decision.builtin_shapes.get(spec.call.key)
            if shape is None:  # pragma: no cover - planner/executor drift
                raise fcore.FactorizedFallback(
                    f"no factorized shape for aggregate {spec.call.key}"
                )
            if shape[0] == "count_star":
                builtin_specs.append(shape)
                continue
            terms: "list[tuple]" = []
            for term in shape[1]:
                if term[0] == "fact":
                    terms.append(("fact", fact.schema.position_of(term[1])))
                elif term[0] == "dim":
                    _kind, dim_index, name = term
                    terms.append(
                        ("dim", dim_index, dim_feature(dim_index, name))
                    )
                else:
                    terms.append(term)
            builtin_specs.append(("sum", tuple(terms)))
    return _FactorizedPositions(
        fact_key_positions=fact_key_positions,
        dim_key_positions=dim_key_positions,
        dim_feature_positions=dim_feature_positions,
        fact_positions=fact_positions,
        sources=tuple(sources),
        builtin_specs=builtin_specs,
    )


def _join_cache_key(decision: FactorizeDecision) -> tuple:
    """Composite cache key for a join-derived summary.

    Covers the whole star shape — fact table, every dimension arm's
    (table, FK, PK), the full argument list and the matrix type — so
    two different star queries can never collide.  Freshness against
    every base table's version is the cache's job (the key only names
    the tables; the entry records their versions).
    """
    return (
        decision.fact_table.lower(),
        tuple(
            (dim.table.lower(), dim.fact_key, dim.dim_key)
            for dim in decision.dims
        ),
        decision.arg_sources,
        decision.matrix_type,
    )


def _sort_key(value: Any) -> tuple:
    """NULLs sort last among ascending values; mixed types sort by type name."""
    if value is None:
        return (2, 0)
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


def _empty_result() -> Relation:
    return Relation(columns=[], rows=[])


def _describe_failure(exc: BaseException) -> str:
    """One-line ``fallback_reason`` text: exception type plus message,
    truncated so a pathological message cannot bloat metrics or spans."""
    text = f"{type(exc).__name__}: {exc}"
    if len(text) > 200:
        text = text[:197] + "..."
    return text


def _matrix_resolver(
    binder: Binder, refs: list[ast.ColumnRef]
) -> Callable[[ast.ColumnRef], int]:
    mapping = {(ref.table, ref.name.lower()): index for index, ref in enumerate(refs)}

    def resolve(ref: ast.ColumnRef) -> int:
        return mapping[(ref.table, ref.name.lower())]

    return resolve


class _DistinctState:
    """Aggregate state paired with the set of argument tuples seen so far
    (DISTINCT aggregation; row path only).

    Partial states merge: the surviving state unions the seen-sets and
    re-accumulates only the unseen argument tuples (the delta) into its
    inner state, so duplicates spread across partitions count once.
    """

    __slots__ = ("inner", "seen")

    def __init__(self, inner: Any, seen: set) -> None:
        self.inner = inner
        self.seen = seen


def _distinct_merge_order(args: tuple) -> tuple:
    """Sort key for re-accumulating a DISTINCT delta during merge.

    Set iteration order varies with ``PYTHONHASHSEED`` for strings;
    sorting the delta keeps floating-point accumulation order — and so
    the merged state — identical across processes."""
    return tuple(_sort_key(value) for value in args)


class _AggregateSpec:
    """One aggregate call bound to its arguments and execution strategy."""

    def __init__(
        self,
        call: AggregateCall,
        aggregate: AggregateFunction | AggregateUdf,
        binder: Binder,
        executor: Executor,
    ) -> None:
        self.call = call
        self.aggregate = aggregate
        self.is_builtin = isinstance(aggregate, AggregateFunction)
        self._distinct = call.call.distinct
        args = call.call.args
        self._star_args = len(args) == 1 and isinstance(args[0], ast.Star)
        if self._star_args:
            if call.name != "count":
                raise PlanningError(f"'*' argument only valid in COUNT(*)")
            args = ()
        self._arg_exprs = args
        self._row_fns = [
            compile_row_expression(arg, binder.resolve, executor._scalar_registry)
            for arg in args
        ]
        if not self.is_builtin:
            assert isinstance(aggregate, AggregateUdf)
            if aggregate.arity is not None and len(args) != aggregate.arity:
                raise PlanningError(
                    f"aggregate UDF {aggregate.name!r} expects "
                    f"{aggregate.arity} arguments, got {len(args)}"
                )
        self._vector_fns: list | None = None
        self._binder = binder
        self._skips_nulls = aggregate.skips_nulls and bool(args)

    # The vector path is usable when the aggregate object supports block
    # accumulation, the call is not DISTINCT, and all arguments vectorize.
    @property
    def vector_ready(self) -> bool:
        if self._distinct:
            return False
        if self.is_builtin:
            supported = (
                type(self.aggregate).accumulate_vector
                is not AggregateFunction.accumulate_vector
            )
        else:
            supported = getattr(self.aggregate, "supports_block", False)
        if not supported:
            return False
        refs = referenced_columns_of_all(self._arg_exprs)
        resolver = _matrix_resolver(self._binder, refs)
        return all(
            compile_vector_expression(arg, resolver) is not None
            for arg in self._arg_exprs
        )

    def prepare_vector(self, matrix_resolver: Callable[[ast.ColumnRef], int]) -> None:
        self._vector_fns = [
            compile_vector_expression(arg, matrix_resolver)
            for arg in self._arg_exprs
        ]

    def initialize(self) -> Any:
        state = self.aggregate.initialize()
        if self._distinct:
            return _DistinctState(state, set())
        return state

    def merge(self, state: Any, other: Any) -> Any:
        if self._distinct:
            assert isinstance(state, _DistinctState)
            assert isinstance(other, _DistinctState)
            delta = other.seen - state.seen
            for args in sorted(delta, key=_distinct_merge_order):
                state.inner = self.aggregate.accumulate(state.inner, args)
            state.seen |= delta
            return state
        return self.aggregate.merge(state, other)

    def finalize(self, state: Any) -> Any:
        if self._distinct:
            assert isinstance(state, _DistinctState)
            return self.aggregate.finalize(state.inner)
        return self.aggregate.finalize(state)

    def accumulate_row(self, state: Any, row: tuple) -> Any:
        args = tuple(fn(row) for fn in self._row_fns)
        if self._skips_nulls and any(value is None for value in args):
            return state
        if self._distinct:
            assert isinstance(state, _DistinctState)
            if args in state.seen:
                return state
            state.seen.add(args)
            state.inner = self.aggregate.accumulate(state.inner, args)
            return state
        if not self.is_builtin:
            assert isinstance(self.aggregate, AggregateUdf)
            self.aggregate.check_args(args)
        return self.aggregate.accumulate(state, args)

    def accumulate_vector(self, state: Any, block: np.ndarray) -> Any:
        assert self._vector_fns is not None
        vectors = [fn(block) for fn in self._vector_fns]  # type: ignore[misc]
        if self.is_builtin:
            assert isinstance(self.aggregate, AggregateFunction)
            result = self.aggregate.accumulate_vector(
                state, vectors, block.shape[0]
            )
            if result is NotImplemented:
                raise ExecutionError(
                    f"aggregate {self.call.name!r} has no vector path"
                )
            return result
        assert isinstance(self.aggregate, AggregateUdf)
        if vectors:
            arg_block = np.column_stack(vectors)
        else:
            arg_block = np.empty((block.shape[0], 0))
        if self._skips_nulls and arg_block.size:
            mask = ~np.isnan(arg_block).any(axis=1)
            if not mask.all():
                arg_block = arg_block[mask]
        return self.aggregate.accumulate_block(state, arg_block)
