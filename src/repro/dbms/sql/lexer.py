"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Handles
identifiers (with ``"quoted"`` form), numeric and string literals,
multi-character operators, comments (``--`` and ``/* */``) and statement
separators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
        "DESC", "LIMIT", "AS", "AND", "OR", "NOT", "NULL", "IS", "IN",
        "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN", "CROSS",
        "INNER", "ON", "CREATE", "TABLE", "VIEW", "OR", "REPLACE", "DROP",
        "IF", "EXISTS", "INSERT", "INTO", "VALUES", "DELETE", "PRIMARY",
        "KEY", "DISTINCT", "LIKE", "MOD", "LEFT", "OUTER", "UPDATE", "SET",
        "EXPLAIN", "ANALYZE",
    }
)

_TWO_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")
_ONE_CHAR_OPERATORS = "+-*/<>=%"
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.upper in names


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*, raising :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        ch = sql[index]
        if ch.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if sql.startswith("/*", index):
            closing = sql.find("*/", index + 2)
            if closing < 0:
                raise SqlSyntaxError("unterminated block comment", index)
            index = closing + 2
            continue
        if ch == "'":
            text, index = _read_string(sql, index)
            tokens.append(Token(TokenType.STRING, text, index))
            continue
        if ch == '"':
            closing = sql.find('"', index + 1)
            if closing < 0:
                raise SqlSyntaxError("unterminated quoted identifier", index)
            tokens.append(
                Token(TokenType.IDENTIFIER, sql[index + 1 : closing], index)
            )
            index = closing + 1
            continue
        if ch.isdigit() or (
            ch == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            text, index = _read_number(sql, index)
            tokens.append(Token(TokenType.NUMBER, text, index))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            token_type = (
                TokenType.KEYWORD if word.upper() in KEYWORDS else TokenType.IDENTIFIER
            )
            tokens.append(Token(token_type, word, start))
            continue
        two = sql[index : index + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, index))
            index += 2
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, index))
            index += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, index))
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal with ``''`` escaping."""
    index = start + 1
    pieces: list[str] = []
    length = len(sql)
    while index < length:
        ch = sql[index]
        if ch == "'":
            if index + 1 < length and sql[index + 1] == "'":
                pieces.append("'")
                index += 2
                continue
            return "".join(pieces), index + 1
        pieces.append(ch)
        index += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    index = start
    length = len(sql)
    seen_dot = False
    seen_exp = False
    while index < length:
        ch = sql[index]
        if ch.isdigit():
            index += 1
            continue
        if ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            index += 1
            continue
        if ch in "eE" and not seen_exp and index > start:
            lookahead = index + 1
            if lookahead < length and sql[lookahead] in "+-":
                lookahead += 1
            if lookahead < length and sql[lookahead].isdigit():
                seen_exp = True
                index = lookahead
                continue
        break
    return sql[start:index], index
