"""Planning for block-wise (vectorized) SELECT execution.

The paper's scoring story — "apply the model in one scan with scalar
UDFs" (Section 3.5) — is semantically one projection over one table.
This module decides when the executor may run that projection the way
the vectorized aggregate path already runs model builds: materialize
each partition's referenced columns as one float block
(:meth:`~repro.dbms.storage.Partition.numeric_matrix`), evaluate the
WHERE predicate as a three-valued truth *vector*
(:func:`~repro.dbms.expressions.compile_vector_predicate`), evaluate
every computed select item as a numpy array function, and dispatch
scoring UDFs through :meth:`~repro.dbms.udf.ScalarUdf.compute_batch` —
one partition-parallel task per non-empty partition instead of one
Python call per row.

:func:`plan_vectorized_select` is a *pure* analysis: it never touches
stored rows, so both the executor (to run the fast path) and the
EXPLAIN plan builder (to annotate the project operator with
``strategy: vectorized-scan`` / ``strategy: row-scan``) call it and
agree by construction.  The returned :class:`VectorizedDecision`
carries either a compiled :class:`VectorizedSelectPlan` or the precise
reason the query must stay on the row path.

Fallback rules (any one sends the query to the row path, whose
semantics are the reference):

* more than one FROM source, a join, a derived table, or a view;
* a referenced column that is not numeric (blocks are float matrices);
* a WHERE predicate or select item outside the vectorizable subset
  (CASE, IN, string work, non-batch UDFs, ...);
* a select item the row path would return as Python ``int`` — unless it
  is exactly a batch UDF call flagged ``batch_integer_result`` (the
  executor then restores ints from the float block);
* ORDER BY keys that need pre-projection source rows (the block path
  never materializes row tuples);
* nothing to vectorize at all — a plain column projection gains nothing
  from blocks and keeps its exact storage values by staying row-wise.

Bit-identity contract: everything the plan compiles must produce — per
row — exactly the Python value the row path produces.  Raw column items
bypass the float block entirely (served from partition column lists),
batch UDF kernels replay the row path's accumulation order, and NULLs
ride through as NaN and are restored to ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dbms.catalog import Catalog
from repro.dbms.expressions import (
    VectorFunction,
    compile_row_expression,
    compile_vector_expression,
    compile_vector_predicate,
    referenced_columns_of_all,
)
from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.functions import SCALAR_BUILTINS
from repro.dbms.sql import ast
from repro.dbms.sql.planner import Binder, BoundColumn, output_name
from repro.dbms.storage import Table
from repro.dbms.types import SqlType
from repro.errors import PlanningError


@dataclass(frozen=True)
class RawColumnItem:
    """A bare column-reference select item.

    Served from the partition's raw value lists — not the float block —
    so INTEGER columns keep exact ints and no value round-trips through
    float64.  ``position`` indexes the table's storage columns.
    """

    position: int


@dataclass(frozen=True)
class BlockItem:
    """A computed select item: one numpy function of the column block.

    ``integer_result`` marks batch UDFs whose row path returns Python
    ints (argmin/argmax subscripts); the executor restores ``int(v)``
    per non-NaN value.
    """

    fn: VectorFunction
    integer_result: bool = False


@dataclass
class VectorizedSelectPlan:
    """Everything the executor needs to run one block-wise projection."""

    table: Table
    #: storage positions materialized into each partition block, in
    #: matrix-column order (the compiled closures index into this order)
    positions: list[int]
    #: three-valued truth vector for WHERE, or None (no predicate)
    where_fn: VectorFunction | None
    items: list[RawColumnItem | BlockItem]
    #: names of scalar UDFs dispatched through compute_batch, in
    #: first-appearance order (EXPLAIN note + fallback detection)
    batch_udf_names: list[str] = field(default_factory=list)


@dataclass
class VectorizedDecision:
    """The outcome of :func:`plan_vectorized_select`."""

    plan: VectorizedSelectPlan | None
    #: why the row path must run instead (empty when vectorized)
    reason: str = ""

    @property
    def vectorized(self) -> bool:
        return self.plan is not None


def _fallback(reason: str) -> VectorizedDecision:
    return VectorizedDecision(plan=None, reason=reason)


def plan_vectorized_select(
    catalog: Catalog,
    select: ast.Select,
    faults: "FaultPlan | NullFaults" = NULL_FAULTS,
) -> VectorizedDecision:
    """Decide whether *select* can run block-wise, compiling it if so.

    Precondition: the caller has already established that *select* has
    no aggregates and no GROUP BY (those take the aggregation path).

    *faults* arms the ``udf.compute_batch`` injection site inside the
    compiled batch-UDF closures; the EXPLAIN plan builder calls with the
    default (its analysis never executes the closures).
    """
    if select.joins or len(select.from_sources) != 1:
        return _fallback("query joins multiple sources")
    source = select.from_sources[0]
    if not isinstance(source, ast.TableName):
        return _fallback("FROM source is a derived table")
    if catalog.has_view(source.name):
        return _fallback("FROM source is a view")
    if not catalog.has_table(source.name):
        # Let the row path raise its usual unknown-table error.
        return _fallback(f"unknown table {source.name!r}")
    table = catalog.table(source.name)
    binding = source.binding_name
    binder = Binder(
        [BoundColumn(binding, column.name) for column in table.schema.columns]
    )

    try:
        items = _expand_stars(select.items, binder)
    except PlanningError as exc:
        return _fallback(str(exc))

    blocked_order = _order_by_blocks(catalog, select, items)
    if blocked_order is not None:
        return _fallback(blocked_order)

    # Classify items: bare column refs bypass the float block entirely.
    raw_items: dict[int, RawColumnItem] = {}
    computed: dict[int, ast.Expression] = {}
    for index, item in enumerate(items):
        expression = item.expression
        if isinstance(expression, ast.ColumnRef):
            try:
                raw_items[index] = RawColumnItem(binder.resolve(expression))
            except PlanningError as exc:
                return _fallback(str(exc))
        else:
            computed[index] = expression

    block_expressions = list(computed.values())
    if select.where is not None:
        block_expressions.append(select.where)
    refs = referenced_columns_of_all(block_expressions)
    for ref in refs:
        try:
            position = binder.resolve(ref)
        except PlanningError as exc:
            return _fallback(str(exc))
        column = table.schema.columns[position]
        if not column.sql_type.is_numeric:
            return _fallback(
                f"references non-numeric column {column.name!r} "
                f"({column.sql_type.value})"
            )
    positions = [binder.resolve(ref) for ref in refs]
    resolver_map = {
        (ref.table, ref.name.lower()): index for index, ref in enumerate(refs)
    }

    def matrix_resolver(ref: ast.ColumnRef) -> int:
        return resolver_map[(ref.table, ref.name.lower())]

    batch_udf_names: list[str] = []
    compile_call = _batch_call_compiler(
        catalog, matrix_resolver, batch_udf_names, faults
    )

    where_fn: VectorFunction | None = None
    if select.where is not None:
        where_fn = compile_vector_predicate(
            select.where, matrix_resolver, compile_call
        )
        if where_fn is None:
            return _fallback(
                f"WHERE {ast.render(select.where)} is not block-compilable"
            )

    plan_items: list[RawColumnItem | BlockItem] = []
    for index, item in enumerate(items):
        raw = raw_items.get(index)
        if raw is not None:
            plan_items.append(raw)
            continue
        expression = computed[index]
        fn = compile_vector_expression(expression, matrix_resolver, compile_call)
        if fn is None:
            return _fallback(
                f"select item {ast.render(expression)} is not block-compilable"
            )
        if _produces_floats(expression, catalog, table, binder):
            plan_items.append(BlockItem(fn))
        elif _is_integer_batch_call(expression, catalog):
            plan_items.append(BlockItem(fn, integer_result=True))
        else:
            # int + int etc. — the row path returns Python ints, which a
            # float block cannot reproduce faithfully.
            return _fallback(
                f"select item {ast.render(expression)} yields integers "
                "on the row path"
            )

    if where_fn is None and not any(
        isinstance(item, BlockItem) for item in plan_items
    ):
        return _fallback("plain column projection; nothing to vectorize")

    return VectorizedDecision(
        plan=VectorizedSelectPlan(
            table=table,
            positions=positions,
            where_fn=where_fn,
            items=plan_items,
            batch_udf_names=batch_udf_names,
        )
    )


def _expand_stars(
    items: "tuple[ast.SelectItem, ...] | list[ast.SelectItem]", binder: Binder
) -> list[ast.SelectItem]:
    expanded: list[ast.SelectItem] = []
    for item in items:
        if isinstance(item.expression, ast.Star):
            for position in binder.positions_for_star(item.expression.table):
                column = binder.columns[position]
                expanded.append(
                    ast.SelectItem(ast.ColumnRef(column.name, column.binding))
                )
        else:
            expanded.append(item)
    return expanded


def _order_by_blocks(
    catalog: Catalog, select: ast.Select, items: "list[ast.SelectItem]"
) -> str | None:
    """None when every ORDER BY key resolves against the *output*.

    The block path never materializes pre-projection row tuples, so an
    ORDER BY that falls back to source columns cannot be served.  Output
    positions (integer literals) and expressions over output names both
    sort on the projected rows only — same resolution order the
    executor's ``_apply_order_limit`` uses.
    """
    if not select.order_by:
        return None
    out_binder = Binder(
        [
            BoundColumn(None, output_name(item, position))
            for position, item in enumerate(items)
        ]
    )

    def registry(name: str):
        builtin = SCALAR_BUILTINS.get(name)
        if builtin is not None:
            return builtin
        return catalog.scalar_udf(name)

    for expr, _ascending in select.order_by:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            continue  # output position; out-of-range raises at runtime
        try:
            compile_row_expression(expr, out_binder.resolve, registry)
        except PlanningError:
            return f"ORDER BY {ast.render(expr)} references source columns"
    return None


def _batch_call_compiler(
    catalog: Catalog,
    resolver: Callable[[ast.ColumnRef], int],
    batch_udf_names: list[str],
    faults: "FaultPlan | NullFaults" = NULL_FAULTS,
) -> Callable[[ast.FuncCall], VectorFunction | None]:
    """A call-compiler hook vectorizing batch-capable scalar UDF calls.

    Consulted by :func:`compile_vector_expression` before its builtin
    math table; returns ``None`` (fall through / fall back) for builtins
    and for UDFs without :meth:`compute_batch`.  Arity mismatches also
    return ``None`` so the row path raises its usual error.
    """
    def compile_call(call: ast.FuncCall) -> VectorFunction | None:
        if call.distinct:
            return None
        udf = catalog.scalar_udf(call.name)
        if udf is None or not udf.supports_batch:
            return None
        if udf.arity is not None and len(call.args) != udf.arity:
            return None
        compiled = [
            compile_vector_expression(arg, resolver, compile_call)
            for arg in call.args
        ]
        if any(fn is None for fn in compiled):
            return None
        if udf.name not in batch_udf_names:
            batch_udf_names.append(udf.name)

        def run(block: np.ndarray) -> np.ndarray:
            if faults.enabled:
                faults.fire("udf.compute_batch", udf=udf.name)
            if compiled:
                stacked = np.column_stack([fn(block) for fn in compiled])
            else:
                stacked = np.empty((block.shape[0], 0))
            return udf.compute_batch(stacked)

        return run

    return compile_call


def _produces_floats(
    expression: ast.Expression,
    catalog: Catalog,
    table: Table,
    binder: Binder,
) -> bool:
    """True when the row path is guaranteed to produce floats (or NULL).

    Conservative: anything not provably float-typed is reported False
    and the caller decides (integer batch UDFs get their own carve-out;
    everything else falls back).  Mirrors the row evaluator's numeric
    promotion rules: ``/``, sqrt/exp/ln/log/power always produce floats;
    ``+ - * MOD`` and unary minus produce floats iff any operand does;
    ``abs`` preserves its argument's type.
    """
    if isinstance(expression, ast.Literal):
        return expression.value is None or isinstance(expression.value, float)
    if isinstance(expression, ast.ColumnRef):
        try:
            position = binder.resolve(expression)
        except PlanningError:
            return False
        return table.schema.columns[position].sql_type is SqlType.FLOAT
    if isinstance(expression, ast.Unary) and expression.op == "-":
        return _produces_floats(expression.operand, catalog, table, binder)
    if isinstance(expression, ast.Binary):
        if expression.op == "/":
            return True
        if expression.op in ("+", "-", "*", "MOD"):
            return _produces_floats(
                expression.left, catalog, table, binder
            ) or _produces_floats(expression.right, catalog, table, binder)
        return False
    if isinstance(expression, ast.FuncCall):
        if expression.name in ("sqrt", "exp", "ln", "log", "power"):
            return True
        if expression.name == "abs":
            return len(expression.args) == 1 and _produces_floats(
                expression.args[0], catalog, table, binder
            )
        udf = catalog.scalar_udf(expression.name)
        if udf is not None and udf.supports_batch:
            return not udf.batch_integer_result
        return False
    return False


def _is_integer_batch_call(
    expression: ast.Expression, catalog: Catalog
) -> bool:
    if not isinstance(expression, ast.FuncCall):
        return False
    udf = catalog.scalar_udf(expression.name)
    return (
        udf is not None
        and udf.supports_batch
        and udf.batch_integer_result
    )
