"""Abstract syntax tree for the SQL subset.

Expression nodes are shared between the parser, the planner and the two
evaluators (row-at-a-time and vectorized).  Nodes are immutable
dataclasses; ``repr`` is the debugging aid and :func:`render` produces
SQL text back from a tree (used by tests and by the TWM-style code
generator to verify round-tripping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence


# ---------------------------------------------------------------- expressions
class Expression:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A numeric, string or NULL literal."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` — only valid in select lists and COUNT(*)."""

    table: str | None = None


@dataclass(frozen=True)
class Unary(Expression):
    """Unary minus or NOT."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    """Arithmetic, comparison or boolean binary operation."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FuncCall(Expression):
    """A function call — builtin scalar, builtin aggregate, or UDF.

    Whether the name denotes an aggregate is decided at planning time
    against the catalog, exactly as a DBMS binds names.
    """

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Case(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    else_result: Expression | None = None


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (literal, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


# ----------------------------------------------------------------- statements
class Statement:
    """Base class for all statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    """One select-list item: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableName:
    """A base table or view reference in FROM."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    """A parenthesized subquery in FROM; SQL requires it to be aliased."""

    select: "Select"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


FromSource = TableName | DerivedTable


@dataclass(frozen=True)
class JoinClause:
    """One join step: ``[CROSS | INNER | LEFT [OUTER]] JOIN source
    [ON condition]``; *outer* marks a left outer join (unmatched left
    rows survive with NULLs — the paper's star-join construction)."""

    source: FromSource
    condition: Expression | None = None
    outer: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement (or subquery)."""

    items: tuple[SelectItem, ...]
    from_sources: tuple[FromSource, ...] = ()
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[tuple[Expression, bool], ...] = ()
    limit: int | None = None


@dataclass(frozen=True)
class ColumnDef:
    """A column definition in CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: str | None = None
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    select: Select
    or_replace: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO t [(cols)] VALUES (...), ...`` or ``INSERT ... SELECT``."""

    table: str
    columns: tuple[str, ...] = ()
    values: tuple[tuple[Expression, ...], ...] = ()
    select: Select | None = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE t SET col = expr [, ...] [WHERE condition]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <statement>``.

    Plain EXPLAIN renders the optimized plan with analytical cost
    estimates and executes nothing; ANALYZE additionally runs the
    statement under span tracing and annotates each operator with its
    measured wall clock (see :mod:`repro.dbms.trace`).
    """

    statement: Statement
    analyze: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class DropView(Statement):
    name: str
    if_exists: bool = False


# -------------------------------------------------------------------- render
def render(node: Expression | Statement) -> str:
    """Render an AST node back to SQL text."""
    if isinstance(node, Literal):
        if node.value is None:
            return "NULL"
        if isinstance(node.value, str):
            escaped = node.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(node.value)
    if isinstance(node, ColumnRef):
        return node.display()
    if isinstance(node, Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, Unary):
        if node.op == "NOT":
            return f"NOT ({render(node.operand)})"
        return f"{node.op}({render(node.operand)})"
    if isinstance(node, Binary):
        return f"({render(node.left)} {node.op} {render(node.right)})"
    if isinstance(node, FuncCall):
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(render(arg) for arg in node.args)
        return f"{node.name}({distinct}{args})"
    if isinstance(node, Case):
        parts = ["CASE"]
        for condition, result in node.whens:
            parts.append(f"WHEN {render(condition)} THEN {render(result)}")
        if node.else_result is not None:
            parts.append(f"ELSE {render(node.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, IsNull):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"({render(node.operand)} {keyword})"
    if isinstance(node, InList):
        keyword = "NOT IN" if node.negated else "IN"
        items = ", ".join(render(item) for item in node.items)
        return f"({render(node.operand)} {keyword} ({items}))"
    if isinstance(node, Select):
        return _render_select(node)
    if isinstance(node, Insert):
        cols = f" ({', '.join(node.columns)})" if node.columns else ""
        if node.select is not None:
            return f"INSERT INTO {node.table}{cols} {_render_select(node.select)}"
        rows = ", ".join(
            "(" + ", ".join(render(v) for v in row) + ")" for row in node.values
        )
        return f"INSERT INTO {node.table}{cols} VALUES {rows}"
    raise TypeError(f"cannot render {type(node).__name__}")


def _render_from_source(source: FromSource) -> str:
    if isinstance(source, TableName):
        return f"{source.name} {source.alias}" if source.alias else source.name
    return f"({_render_select(source.select)}) {source.alias}"


def _render_select(select: Select) -> str:
    items = ", ".join(
        render(item.expression) + (f" AS {item.alias}" if item.alias else "")
        for item in select.items
    )
    parts = [f"SELECT {items}"]
    if select.from_sources:
        sources = ", ".join(_render_from_source(s) for s in select.from_sources)
        parts.append(f"FROM {sources}")
        for join in select.joins:
            if join.condition is None:
                parts.append(f"CROSS JOIN {_render_from_source(join.source)}")
            else:
                keyword = "LEFT JOIN" if join.outer else "JOIN"
                parts.append(
                    f"{keyword} {_render_from_source(join.source)} "
                    f"ON {render(join.condition)}"
                )
    if select.where is not None:
        parts.append(f"WHERE {render(select.where)}")
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(render(e) for e in select.group_by))
    if select.having is not None:
        parts.append(f"HAVING {render(select.having)}")
    if select.order_by:
        orders = ", ".join(
            render(expr) + ("" if ascending else " DESC")
            for expr, ascending in select.order_by
        )
        parts.append(f"ORDER BY {orders}")
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def count_select_terms(select: Select) -> int:
    """Number of select-list terms — the unit the cost model charges
    SQL parse/evaluation by (the paper's 1 + d + d² query is the
    motivating case)."""
    return len(select.items)


def walk(expression: Expression) -> Sequence[Expression]:
    """All nodes of an expression tree, preorder."""
    found: list[Expression] = []

    def visit(node: Expression) -> None:
        found.append(node)
        if isinstance(node, Unary):
            visit(node.operand)
        elif isinstance(node, Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Case):
            for condition, result in node.whens:
                visit(condition)
                visit(result)
            if node.else_result is not None:
                visit(node.else_result)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)

    visit(expression)
    return found
