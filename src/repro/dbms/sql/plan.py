"""EXPLAIN plan trees: operators, optimizer decisions, cost estimates.

This is the introspection surface ``EXPLAIN [ANALYZE]`` exposes.  A
:class:`Plan` is built *analytically*: the statement is run through the
:class:`~repro.dbms.sql.optimizer.QueryOptimizer`, the optimized AST is
shaped into a tree of :class:`PlanNode` operators (scan, join, filter,
aggregate, project, sort, limit), and each operator is annotated with

* the optimizer decisions that produced it (eliminated joins, pushed
  predicates, group-by pushdown, partition fan-out), and
* its per-operator estimate in *simulated seconds* from the cost-model
  constants in :class:`~repro.dbms.cost.CostParameters` — the same
  constants the executor charges, applied to catalog row counts.

For ``EXPLAIN ANALYZE`` the executor runs the optimized statement under
a :class:`~repro.dbms.trace.Tracer` and calls :meth:`Plan.attach_trace`,
which pairs each operator with its measured :class:`~repro.dbms.trace.
Span` — per-operator wall clock, row counts, and the per-partition task
spans underneath the aggregate.  Estimated simulated seconds and actual
wall clock answer different questions (see ``docs/cost_model.md``) and
are deliberately shown side by side.

Plan shape is part of the public API: tests and benchmarks assert
things like "the nLQ model build is exactly one scan" via
:attr:`Plan.scans` instead of inferring it from timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.dbms.catalog import Catalog
from repro.dbms.cost import CostParameters
from repro.dbms.metrics import QueryMetrics
from repro.dbms.sql import ast
from repro.dbms.sql.factorize import plan_factorize
from repro.dbms.sql.optimizer import OptimizationReport, QueryOptimizer
from repro.dbms.sql.planner import find_aggregates
from repro.dbms.sql.vectorized import plan_vectorized_select
from repro.dbms.trace import Span


@dataclass
class PlanNode:
    """One operator of an EXPLAIN plan tree."""

    operator: str
    detail: str = ""
    #: analytical cost-model estimate for this operator alone
    estimated_seconds: float = 0.0
    #: estimated input/output cardinality where the catalog knows it
    estimated_rows: float | None = None
    #: optimizer decisions and structural annotations
    notes: list[str] = field(default_factory=list)
    children: list["PlanNode"] = field(default_factory=list)
    #: measured span, attached by EXPLAIN ANALYZE (None otherwise)
    span: Span | None = None

    def walk(self) -> Iterator["PlanNode"]:
        """This node and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, operator: str) -> list["PlanNode"]:
        return [node for node in self.walk() if node.operator == operator]

    @property
    def actual_seconds(self) -> float | None:
        """Measured wall clock (EXPLAIN ANALYZE only)."""
        return self.span.seconds if self.span is not None else None

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        line = f"{pad}{self.operator}: {self.detail}" if self.detail \
            else f"{pad}{self.operator}"
        if self.estimated_seconds:
            line += f"  [est {self.estimated_seconds:.3f}s]"
        if self.span is not None:
            line += f"  (actual {self.span.seconds * 1e3:.3f} ms)"
        lines = [line]
        for note in self.notes:
            lines.append(f"{pad}  note: {note}")
        if self.span is not None:
            # Executed-route annotations (ANALYZE only): which strategy
            # actually ran, and — on vectorized→row degradation — why.
            strategy = self.span.attributes.get("strategy")
            if strategy:
                lines.append(f"{pad}  strategy: {strategy}")
            reason = self.span.attributes.get("fallback_reason")
            if reason:
                lines.append(f"{pad}  fallback_reason: {reason}")
        if self.span is not None and self.span.children:
            for child_span in self.span.children:
                lines.extend(child_span.render(indent + 1))
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


@dataclass
class Plan:
    """A complete EXPLAIN result: operator tree + decisions (+ trace)."""

    statement: ast.Select
    root: PlanNode
    report: OptimizationReport
    analyze: bool = False
    #: filled by :meth:`attach_trace` after an ANALYZE execution
    trace: Span | None = None
    metrics: QueryMetrics | None = None

    @property
    def optimized(self) -> ast.Select:
        """The statement EXPLAIN described and ANALYZE executed."""
        return self.report.optimized

    def nodes(self) -> list[PlanNode]:
        return list(self.root.walk())

    def find(self, operator: str) -> list[PlanNode]:
        return self.root.find(operator)

    @property
    def scans(self) -> list[PlanNode]:
        """Every base-table scan in the plan (the paper's unit of cost:
        'one scan' is the claim EXPLAIN lets tests assert)."""
        return self.root.find("scan")

    @property
    def estimated_seconds(self) -> float:
        return sum(node.estimated_seconds for node in self.root.walk())

    # -------------------------------------------------------------- analyze
    def attach_trace(self, trace: Span, metrics: QueryMetrics) -> None:
        """Pair measured spans with plan operators after execution.

        Operators and spans are matched by name in preorder — both trees
        are produced from the same optimized statement, so the k-th
        ``aggregate`` span belongs to the k-th ``aggregate`` node (and
        likewise for scan/project/sort).  Join spans are emitted
        innermost-first by the left-deep evaluator while plan preorder
        lists them outermost-first, so that pairing is reversed.
        Per-partition spans nested under ``task`` spans stay with their
        aggregate; filters have no span of their own (predicate
        evaluation happens inside the scan or accumulation that absorbs
        it).
        """
        self.trace = trace
        self.metrics = metrics
        join_operators = ("join", "cross join", "left outer join")
        join_nodes = [
            node for node in self.root.walk()
            if node.operator in join_operators
        ]
        join_spans = _operator_spans(trace, "join")
        for node, span in zip(join_nodes, reversed(join_spans)):
            node.span = span
        for operator in ("scan", "aggregate", "sort"):
            nodes = self.root.find(operator)
            spans = _operator_spans(trace, operator)
            for node, span in zip(nodes, spans):
                node.span = span
        project_spans = _operator_spans(trace, "project")
        if not project_spans:
            # Aggregate queries fuse projection into finalization (one
            # pass packs states and builds output rows), so the project
            # operator's measured time is the finalize span.
            project_spans = _operator_spans(trace, "finalize")
        for node, span in zip(self.root.find("project"), project_spans):
            node.span = span
        if metrics.blocks_spilled:
            self.root.notes.append(
                f"spilled {metrics.blocks_spilled} cache blocks "
                f"({metrics.bytes_spilled} bytes) to disk under the "
                "block-cache byte budget"
            )

    # --------------------------------------------------------------- render
    def render(self) -> list[str]:
        header = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        lines = [header]
        lines.extend(self.root.render(1))
        lines.append(
            f"estimated simulated seconds: {self.estimated_seconds:.3f}"
        )
        if self.metrics is not None:
            lines.append(
                "actual wall-clock seconds: "
                f"{self.metrics.total_seconds:.6f} "
                f"(workers={self.metrics.workers}, "
                f"rows={self.metrics.rows_processed}, "
                f"partitions={self.metrics.partitions_processed})"
            )
        return lines

    def text(self) -> str:
        return "\n".join(self.render())


def _operator_spans(trace: Span, name: str) -> list[Span]:
    """Spans named *name* in preorder, excluding anything nested under a
    per-partition ``task`` span (those belong to the aggregate node that
    fanned them out, not to a plan operator of their own) and spans
    marked ``failed`` (a vectorized attempt that degraded to the row
    path — its replacement span is the one that pairs with the plan
    operator; the failed span stays visible in the raw trace)."""
    found: list[Span] = []

    def visit(span: Span) -> None:
        if span.name == "task":
            return
        if span.name == name and not span.attributes.get("failed"):
            found.append(span)
        for child in span.children:
            visit(child)

    visit(trace)
    return found


# ------------------------------------------------------------------ builder
def build_plan(
    catalog: Catalog,
    select: ast.Select,
    params: CostParameters,
    analyze: bool = False,
    vectorized_select: bool = True,
    factorized_joins: bool = True,
) -> Plan:
    """Build the plan tree EXPLAIN renders (and ANALYZE executes).

    *vectorized_select* and *factorized_joins* mirror the executor's
    toggles so the plan's strategy notes and join shape report what
    execution would really do.
    """
    report = QueryOptimizer(catalog).optimize(select)
    builder = _PlanBuilder(catalog, params, vectorized_select, factorized_joins)
    root = builder.select_node(report.optimized, report)
    return Plan(statement=select, root=root, report=report, analyze=analyze)


class _PlanBuilder:
    def __init__(
        self,
        catalog: Catalog,
        params: CostParameters,
        vectorized_select: bool = True,
        factorized_joins: bool = True,
    ) -> None:
        self._catalog = catalog
        self._params = params
        self._vectorized_select = vectorized_select
        self._factorized_joins = factorized_joins

    # ------------------------------------------------------------- operators
    def select_node(
        self,
        select: ast.Select,
        report: OptimizationReport | None = None,
    ) -> PlanNode:
        params = self._params
        factorize_decision = None
        if select.joins and self._factorized_joins:
            factorize_decision = plan_factorize(self._catalog, select, report)
        if factorize_decision is not None and factorize_decision.factorized:
            current, rows = self._factorized_join_node(factorize_decision)
        else:
            current, rows = self._input_tree(select)

        if select.where is not None:
            nodes = len(ast.walk(select.where))
            current = PlanNode(
                "filter",
                ast.render(select.where),
                estimated_seconds=rows * nodes * params.sql_eval_node
                / params.amps,
                estimated_rows=rows,
                children=[current],
            )

        aggregates = self._aggregates(select)
        group_count = 1
        aggregated = bool(aggregates or select.group_by)
        if aggregated:
            current = self._aggregate_node(select, aggregates, rows, current)
            rows = float(group_count)

        current = self._project_node(select, rows, current)
        if not aggregated:
            self._annotate_projection_strategy(select, current)

        if select.order_by:
            keys = ", ".join(
                ast.render(expr) + ("" if ascending else " DESC")
                for expr, ascending in select.order_by
            )
            comparisons = rows * math.log2(rows) if rows > 1 else 0.0
            current = PlanNode(
                "sort",
                keys,
                estimated_seconds=comparisons * params.sort_compare
                / params.amps,
                estimated_rows=rows,
                children=[current],
            )
        if select.limit is not None:
            current = PlanNode(
                "limit", str(select.limit), estimated_rows=float(select.limit),
                children=[current],
            )

        if report is not None:
            for binding in report.eliminated_joins:
                current.notes.append(
                    f"join eliminated: {binding} (unused, cardinality-safe)"
                )
            if report.pushed_group_by:
                current.notes.append(
                    "group-by pushed below the join (pre-aggregated fact)"
                )
            for predicate in report.pushed_predicates:
                current.notes.append(
                    f"predicate pushed into subquery: {predicate}"
                )
        if (
            factorize_decision is not None
            and not factorize_decision.factorized
            and aggregated
        ):
            current.notes.append(
                f"factorized-join refused: {factorize_decision.reason}"
            )
        return current

    def _factorized_join_node(self, decision) -> tuple[PlanNode, float]:
        """The factorized replacement for a star-join input tree.

        One scan per base table; partial aggregates are combined through
        the FK->PK keys, so the joined table is never materialized.  The
        note carries the avoided-rows accounting that tests and
        ``BENCH_factorized.json`` assert against: a nested-loop join
        reads |fact| + Sum_i |fact| x |dim_i| input rows, the factorized
        path reads Sum |base tables|.
        """
        params = self._params
        children: list[PlanNode] = []
        fact = self._catalog.table(decision.fact_table)
        fact_rows = fact.nominal_rows
        scanned = 0.0
        nested_loop_reads = 0.0
        for dim in decision.dims:
            node, dim_rows = self._source_node(
                ast.TableName(dim.table, alias=dim.binding)
            )
            node.notes.append(
                f"dimension arm: {dim.binding}.{dim.dim_key} = "
                f"{decision.fact_binding}.{dim.fact_key} (key -> partial map)"
            )
            children.append(node)
            scanned += dim_rows
            nested_loop_reads += fact_rows * (1 + dim_rows)
        fact_node, _ = self._source_node(
            ast.TableName(decision.fact_table, alias=decision.fact_binding)
        )
        children.append(fact_node)
        scanned += fact_rows
        avoided = max(0.0, nested_loop_reads - scanned)
        node = PlanNode(
            "factorized-join",
            f"{decision.fact_table} star over {len(decision.dims)} "
            f"dimension(s), shape {decision.shape}",
            # Per fact row: one hash probe per dimension arm during the
            # fold (the dim scans carry their own scan estimates).
            estimated_seconds=fact_rows * len(decision.dims)
            * params.sql_eval_node / params.amps,
            estimated_rows=fact_rows,
            notes=[
                f"factorized-join: scans {scanned:.0f} base-table rows "
                f"instead of ~{nested_loop_reads:.0f} nested-loop input "
                f"reads ({avoided:.0f} rows avoided)"
            ],
            children=children,
        )
        return node, fact_rows

    def _input_tree(self, select: ast.Select) -> tuple[PlanNode, float]:
        """The FROM clause as a left-deep tree; returns (node, est rows)."""
        if not select.from_sources:
            return PlanNode("values", "1 row", estimated_rows=1.0), 1.0
        current, rows = self._source_node(select.from_sources[0])
        for source in select.from_sources[1:]:
            right, right_rows = self._source_node(source)
            current, rows = self._join_node(
                "cross join", "", current, rows, right, right_rows
            )
        for join in select.joins:
            right, right_rows = self._source_node(join.source)
            if join.condition is None:
                operator, detail = "cross join", ""
            else:
                operator = "left outer join" if join.outer else "join"
                detail = f"on {ast.render(join.condition)}"
            current, rows = self._join_node(
                operator, detail, current, rows, right, right_rows
            )
        return current, rows

    def _join_node(
        self,
        operator: str,
        detail: str,
        left: PlanNode,
        left_rows: float,
        right: PlanNode,
        right_rows: float,
    ) -> tuple[PlanNode, float]:
        # Nested-loop joins spool their output; without statistics we
        # estimate the output at the larger input (the PK-join and
        # one-row model-table shapes the workload actually uses).
        rows = max(left_rows, right_rows)
        node = PlanNode(
            operator,
            detail,
            estimated_seconds=left_rows * right_rows
            * self._params.sql_eval_node / self._params.amps,
            estimated_rows=rows,
            children=[left, right],
        )
        return node, rows

    def _source_node(self, source: ast.FromSource) -> tuple[PlanNode, float]:
        params = self._params
        if isinstance(source, ast.DerivedTable):
            child = self.select_node(source.select)
            rows = child.estimated_rows or 1.0
            node = PlanNode(
                "subquery",
                f"{source.alias} (spooled and re-scanned)",
                estimated_seconds=rows
                * (params.scan_row + params.sql_spool_row_cell) / params.amps,
                estimated_rows=rows,
                children=[child],
            )
            return node, rows
        if self._catalog.has_view(source.name):
            child = self.select_node(self._catalog.view(source.name))
            rows = child.estimated_rows or 1.0
            node = PlanNode(
                "view",
                f"{source.name} (expanded inline)",
                estimated_rows=rows,
                children=[child],
            )
            return node, rows
        table = self._catalog.table(source.name)
        rows = table.nominal_rows
        per_row = params.scan_row + table.width * params.scan_value
        node = PlanNode(
            "scan",
            f"table {table.name} ({rows:.0f} rows x {table.width} cols, "
            f"{table.partition_count} partitions)",
            estimated_seconds=rows * per_row / params.amps,
            estimated_rows=rows,
        )
        config = getattr(self._catalog, "cache_config", None)
        if config is not None and config.max_bytes is not None:
            node.notes.append(
                f"block cache budget {config.max_bytes} bytes "
                f"({config.max_entries} entries): LRU eviction spills "
                "cold blocks to disk"
            )
        return node, rows

    def _aggregates(self, select: ast.Select):
        # Mirrors the executor: ORDER BY expressions only contribute
        # aggregates when the query already aggregates.
        expressions = [item.expression for item in select.items]
        if select.having is not None:
            expressions.append(select.having)
        calls = find_aggregates(expressions, self._catalog.is_aggregate)
        if (calls or select.group_by) and select.order_by:
            calls = find_aggregates(
                expressions + [expr for expr, _ in select.order_by],
                self._catalog.is_aggregate,
            )
        return calls

    def _aggregate_node(
        self,
        select: ast.Select,
        aggregates,
        rows: float,
        child: PlanNode,
    ) -> PlanNode:
        params = self._params
        names = ", ".join(a.call.name for a in aggregates)
        keys = ", ".join(ast.render(g) for g in select.group_by) or "()"
        seconds = 0.0
        if select.group_by:
            seconds += rows * params.groupby_hash_row / params.amps
        notes: list[str] = []
        base = self._single_base_table(select)
        partitions = params.amps
        if base is not None:
            partitions = base.partition_count
            notes.append(
                f"fan-out: {base.non_empty_partition_count} partition tasks "
                f"over {base.partition_count} partitions of {base.name}"
            )
            notes.append("single-scan aggregation (no spool between scans)")
        for aggregate in aggregates:
            udf = self._catalog.aggregate_udf(aggregate.call.name)
            if udf is None:
                continue
            profile = udf.cost_per_row(len(aggregate.call.args))
            seconds += rows * (
                params.udf_row_overhead
                + profile.list_params * params.udf_param
                + profile.string_chars * params.udf_string_char
                + profile.arith_ops * params.udf_arith_op
            ) / params.amps
            seconds += (
                partitions * udf.state_value_count() * params.udf_merge_value
            )
            seconds += udf.state_value_count() * params.udf_return_value
            notes.append(
                f"aggregate UDF {udf.name}: "
                f"{udf.state_value_count()} state values/partition, "
                f"merged across {partitions} partials"
            )
            if getattr(udf, "fused_iteration", False):
                notes.append(
                    f"fused clustering iteration ({udf.name}): assignment "
                    "+ (N, L, Q) accumulation in one scan"
                )
        node = PlanNode(
            "aggregate",
            f"[{names}] group by {keys}",
            estimated_seconds=seconds,
            estimated_rows=rows,
            notes=notes,
            children=[child],
        )
        return node

    def _project_node(
        self, select: ast.Select, rows: float, child: PlanNode
    ) -> PlanNode:
        params = self._params
        nodes = sum(len(ast.walk(item.expression)) for item in select.items)
        seconds = (
            params.sql_statement_overhead
            + len(select.items)
            * (params.sql_parse_per_term + params.sql_spool_cell)
            + rows * nodes * params.sql_eval_node / params.amps
        )
        return PlanNode(
            "project",
            f"{len(select.items)} columns",
            estimated_seconds=seconds,
            estimated_rows=rows,
            children=[child],
        )

    def _annotate_projection_strategy(
        self, select: ast.Select, project_node: PlanNode
    ) -> None:
        """Note whether the projection runs block-wise or row-wise.

        Runs the same :func:`plan_vectorized_select` analysis the
        executor runs, so the EXPLAIN note and actual execution can
        never disagree.  Only single-base-table shapes get a note at
        all — joins and derived tables are self-evidently row-wise.
        """
        if self._single_base_table(select) is None:
            return
        if not self._vectorized_select:
            project_node.notes.append(
                "strategy: row-scan (vectorized SELECT disabled)"
            )
            return
        decision = plan_vectorized_select(self._catalog, select)
        if decision.plan is not None:
            table = decision.plan.table
            detail = (
                f"{table.non_empty_partition_count} partition tasks over "
                f"{table.partition_count} partitions of {table.name}"
            )
            if decision.plan.batch_udf_names:
                detail += "; batched UDFs: " + ", ".join(
                    decision.plan.batch_udf_names
                )
            project_node.notes.append(f"strategy: vectorized-scan ({detail})")
        else:
            project_node.notes.append(
                f"strategy: row-scan ({decision.reason})"
            )

    def _single_base_table(self, select: ast.Select):
        """The single stored table a one-source, no-join SELECT scans —
        the shape whose aggregation is partition-parallel."""
        if select.joins or len(select.from_sources) != 1:
            return None
        source = select.from_sources[0]
        if not isinstance(source, ast.TableName):
            return None
        if not self._catalog.has_table(source.name):
            return None
        return self._catalog.table(source.name)
