"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    statement   := explain | select | create_table | create_view | insert
                 | delete | drop_table | drop_view
    explain     := EXPLAIN [ANALYZE] statement
    select      := SELECT [DISTINCT-less] item ("," item)*
                   [FROM source ("," source)* join*]
                   [WHERE expr] [GROUP BY expr ("," expr)*] [HAVING expr]
                   [ORDER BY expr [ASC|DESC] ("," ...)*] [LIMIT n]
    source      := name [alias] | "(" select ")" alias
    join        := (CROSS JOIN source) | ([INNER] JOIN source ON expr)
    expr        := boolean expression with the usual precedence:
                   OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE
                   < additive < multiplicative (incl. MOD) < unary < primary

The parser is pure syntax: names are not resolved against the catalog
here (the planner does that), matching how a DBMS separates parse from
bind.
"""

from __future__ import annotations

from repro.dbms.sql import ast
from repro.dbms.sql.lexer import Token, TokenType, tokenize
from repro.errors import SqlSyntaxError

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing ``;`` is allowed)."""
    statements = parse_statements(sql)
    if len(statements) != 1:
        raise SqlSyntaxError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]


def parse_statements(sql: str) -> list[ast.Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements: list[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------- primitives
    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type is TokenType.END

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        near = token.text or "end of input"
        return SqlSyntaxError(f"{message}, near {near!r}", token.position)

    def accept_keyword(self, *names: str) -> Token | None:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, name: str) -> Token:
        token = self.accept_keyword(name)
        if token is None:
            raise self.error(f"expected {name}")
        return token

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise self.error(f"expected {text!r}")

    def accept_operator(self, *texts: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.text in texts:
            return self.advance()
        return None

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.text
        raise self.error(f"expected {what}")

    # ------------------------------------------------------------- statements
    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("EXPLAIN"):
            return self._parse_explain()
        if token.is_keyword("SELECT"):
            return self.parse_select()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        raise self.error("expected a statement")

    def _parse_explain(self) -> ast.Explain:
        self.expect_keyword("EXPLAIN")
        analyze = bool(self.accept_keyword("ANALYZE"))
        if self.peek().is_keyword("EXPLAIN"):
            raise self.error("cannot nest EXPLAIN inside EXPLAIN")
        return ast.Explain(self.parse_statement(), analyze)

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())

        from_sources: list[ast.FromSource] = []
        joins: list[ast.JoinClause] = []
        if self.accept_keyword("FROM"):
            from_sources.append(self._parse_from_source())
            while True:
                if self.accept_punct(","):
                    from_sources.append(self._parse_from_source())
                    continue
                if self.accept_keyword("CROSS"):
                    self.expect_keyword("JOIN")
                    joins.append(ast.JoinClause(self._parse_from_source()))
                    continue
                if self.peek().is_keyword("INNER", "JOIN", "LEFT"):
                    outer = False
                    if self.accept_keyword("LEFT"):
                        self.accept_keyword("OUTER")
                        outer = True
                    else:
                        self.accept_keyword("INNER")
                    self.expect_keyword("JOIN")
                    source = self._parse_from_source()
                    self.expect_keyword("ON")
                    condition = self.parse_expression()
                    joins.append(ast.JoinClause(source, condition, outer))
                    continue
                break

        where = self.parse_expression() if self.accept_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punct(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self.accept_keyword("HAVING") else None

        order_by: list[tuple[ast.Expression, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.type is not TokenType.NUMBER:
                raise self.error("expected a number after LIMIT")
            self.advance()
            limit = int(float(token.text))

        return ast.Select(
            items=tuple(items),
            from_sources=tuple(from_sources),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _parse_order_item(self) -> tuple[ast.Expression, bool]:
        expression = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return expression, ascending

    def _parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (
            token.type is TokenType.IDENTIFIER
            and self.peek(1).type is TokenType.PUNCT
            and self.peek(1).text == "."
            and self.peek(2).type is TokenType.OPERATOR
            and self.peek(2).text == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table=token.text))
        expression = self.parse_expression()
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.advance().text
        return ast.SelectItem(expression, alias)

    def _parse_from_source(self) -> ast.FromSource:
        if self.accept_punct("("):
            select = self.parse_select()
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier("derived-table alias")
            return ast.DerivedTable(select, alias)
        name = self.expect_identifier("table name")
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.advance().text
        return ast.TableName(name, alias)

    # --------------------------------------------------------------------- DDL
    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        or_replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        if self.accept_keyword("VIEW"):
            name = self.expect_identifier("view name")
            self.expect_keyword("AS")
            select = self.parse_select()
            return ast.CreateView(name, select, or_replace)
        if or_replace:
            raise self.error("OR REPLACE is only supported for views")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: str | None = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_punct("(")
                primary_key = self.expect_identifier("primary key column")
                self.expect_punct(")")
            else:
                column_name = self.expect_identifier("column name")
                type_name = self._parse_type_name()
                not_null = False
                is_pk = False
                while True:
                    if self.accept_keyword("NOT"):
                        self.expect_keyword("NULL")
                        not_null = True
                        continue
                    if self.accept_keyword("PRIMARY"):
                        self.expect_keyword("KEY")
                        is_pk = True
                        not_null = True
                        continue
                    break
                columns.append(
                    ast.ColumnDef(column_name, type_name, not_null, is_pk)
                )
                if is_pk:
                    primary_key = column_name
            if self.accept_punct(","):
                continue
            self.expect_punct(")")
            break
        return ast.CreateTable(name, tuple(columns), primary_key, if_not_exists)

    def _parse_type_name(self) -> str:
        token = self.peek()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise self.error("expected a type name")
        self.advance()
        name = token.text
        # "DOUBLE PRECISION" is the only two-word type we accept.
        if name.upper() == "DOUBLE" and self.peek().type is TokenType.IDENTIFIER:
            if self.peek().text.upper() == "PRECISION":
                self.advance()
                name = "DOUBLE PRECISION"
        # Swallow an optional length, e.g. VARCHAR(20).
        if self.accept_punct("("):
            while not self.accept_punct(")"):
                self.advance()
        return name

    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_identifier("column name"))
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        if self.peek().is_keyword("SELECT"):
            return ast.Insert(table, tuple(columns), select=self.parse_select())
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self.expect_punct("(")
            row = [self.parse_expression()]
            while self.accept_punct(","):
                row.append(self.parse_expression())
            self.expect_punct(")")
            rows.append(tuple(row))
            if not self.accept_punct(","):
                break
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier("column name")
            if self.accept_operator("=") is None:
                raise self.error("expected '=' in SET clause")
            assignments.append((column, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("VIEW"):
            if_exists = self._accept_if_exists()
            return ast.DropView(self.expect_identifier("view name"), if_exists)
        self.expect_keyword("TABLE")
        if_exists = self._accept_if_exists()
        return ast.DropTable(self.expect_identifier("table name"), if_exists)

    def _accept_if_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            return True
        return False

    # ------------------------------------------------------------ expressions
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self.accept_operator(*_COMPARISON_OPS)
        if token is not None:
            op = "<>" if token.text == "!=" else token.text
            return ast.Binary(op, left, self._parse_additive())
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            between = ast.Binary(
                "AND",
                ast.Binary(">=", left, low),
                ast.Binary("<=", left, high),
            )
            return ast.Unary("NOT", between) if negated else between
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            items = [self.parse_expression()]
            while self.accept_punct(","):
                items.append(self.parse_expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("LIKE"):
            pattern = self._parse_additive()
            like = ast.FuncCall("like", (left, pattern))
            return ast.Unary("NOT", like) if negated else like
        if negated:
            raise self.error("expected BETWEEN, IN or LIKE after NOT")
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_operator("+", "-")
            if token is None and self.peek().type is TokenType.OPERATOR \
                    and self.peek().text == "||":
                self.advance()
                left = ast.FuncCall("concat", (left, self._parse_multiplicative()))
                continue
            if token is None:
                return left
            left = ast.Binary(token.text, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if token is not None:
                op = "MOD" if token.text == "%" else token.text
                left = ast.Binary(op, left, self._parse_unary())
                continue
            if self.accept_keyword("MOD"):
                left = ast.Binary("MOD", left, self._parse_unary())
                continue
            return left

    def _parse_unary(self) -> ast.Expression:
        token = self.accept_operator("-", "+")
        if token is not None:
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.Unary("-", operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if self.accept_punct("("):
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise self.error("expected an expression")

    def _parse_case(self) -> ast.Expression:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result: ast.Expression | None = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self.expect_keyword("END")
        return ast.Case(tuple(whens), else_result)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self.advance().text
        # function call
        if self.accept_punct("("):
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: list[ast.Expression] = []
            if not self.accept_punct(")"):
                token = self.peek()
                if token.type is TokenType.OPERATOR and token.text == "*":
                    self.advance()
                    args.append(ast.Star())
                else:
                    args.append(self.parse_expression())
                while self.accept_punct(","):
                    args.append(self.parse_expression())
                self.expect_punct(")")
            return ast.FuncCall(name.lower(), tuple(args), distinct)
        # qualified column: alias.column
        if self.accept_punct("."):
            column = self.expect_identifier("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)
