"""Factorized-join planning: push summary aggregates through key–FK joins.

The paper builds every model from one scan of a single table via the
``(n, L, Q)`` sufficient statistics.  Real deployments keep that table
normalized as a star schema, and materializing the key–FK join before
aggregating costs O(|join|) rows scanned and copied.  Because the
statistics are sums of per-row monomials, they *distribute* through an
FK → PK inner join (the sparse-tensor / functional-dependency view of
arXiv:1703.04780): group the dimension-side feature vectors by key,
count the fact-side key multiplicities, and combine the partials — the
joined table never exists.  Scan cost drops from |join| to
Σ|base tables|.

This module is the *planning* half: :func:`plan_factorize` inspects a
parsed ``SELECT`` and either produces a :class:`FactorizeDecision`
describing exactly how to decompose the aggregation, or refuses with a
human-readable reason (surfaced in EXPLAIN).  The execution half lives
in :mod:`repro.core.factorized` and
``Executor._execute_factorized_aggregate``.

The pass is deliberately conservative — anything it cannot prove
distributive falls back to the ordinary materialize-then-aggregate
path, which remains the semantic reference.

Apply-order contract with :class:`~repro.dbms.sql.optimizer.
QueryOptimizer`: join elimination and the group-by-before-join rewrite
run first; factorize only fires on what survives.  If the group-by
pushdown already restructured the statement the pass refuses (the
derived-table form it produces is no longer a recognizable star), and
an eliminated join simply no longer appears in ``select.joins``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.summary import MatrixType
from repro.dbms.functions import AGGREGATE_BUILTINS
from repro.dbms.sql import ast
from repro.dbms.sql.planner import AggregateCall, find_aggregates
from repro.errors import PlanningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.catalog import Catalog
    from repro.dbms.sql.optimizer import OptimizationReport

#: where an aggregate argument's value comes from, per joined row:
#: ``("fact", column)`` — read from the fact row;
#: ``("dim", index, column)`` — read from the matched row of dims[index];
#: ``("const", value)`` — a literal, identical on every row.
ArgSource = "tuple"


@dataclass(frozen=True)
class DimJoin:
    """One dimension arm of the star: ``fact.fact_key = dim.dim_key``."""

    table: str  # stored table name
    binding: str  # alias the query binds it under (or the table name)
    fact_key: str  # FK column on the fact table
    dim_key: str  # the dimension table's primary key


@dataclass
class FactorizeDecision:
    """Outcome of :func:`plan_factorize`.

    When ``factorized`` is False, ``reason`` says why — the wording is
    shown verbatim as an EXPLAIN note so refusals are debuggable.
    """

    factorized: bool
    reason: str = ""
    fact_table: str = ""
    fact_binding: str = ""
    dims: "tuple[DimJoin, ...]" = ()
    #: "summary" (one (n, L, Q)-style UDF), "fused" (k-means/EM
    #: iteration UDF), or "builtins" (COUNT(*)/SUM combinations)
    shape: str = ""
    udf_name: str = ""
    matrix_type: "MatrixType | None" = None
    #: for summary/fused: one ArgSource per feature column (the UDF's
    #: args after the leading dimension-count literal)
    arg_sources: "tuple[ArgSource, ...]" = ()
    #: for builtins: AggregateCall.key -> ("count_star",) or
    #: ("sum", (ArgSource, ...)) with 1 or 2 sources (plain / product)
    builtin_shapes: "dict[str, tuple]" = field(default_factory=dict)
    notes: "tuple[str, ...]" = ()


def _refuse(reason: str) -> FactorizeDecision:
    return FactorizeDecision(factorized=False, reason=reason)


def _column_map(schema) -> "dict[str, object]":
    return {column.name.lower(): column for column in schema.columns}


class _StarShape:
    """Resolved base tables of a candidate star query."""

    def __init__(
        self,
        fact_table: str,
        fact_binding: str,
        fact_columns: "dict[str, object]",
        dims: "list[DimJoin]",
        dim_columns: "list[dict[str, object]]",
    ) -> None:
        self.fact_table = fact_table
        self.fact_binding = fact_binding
        self.fact_columns = fact_columns
        self.dims = dims
        self.dim_columns = dim_columns

    def resolve(self, ref: ast.ColumnRef) -> "tuple | None":
        """Map a column reference to an ArgSource, or None if unknown.

        Mirrors Binder semantics: a qualified reference must match its
        binding; an unqualified one must match exactly one base table
        (ambiguity returns None so the reference falls back to the row
        path, which raises the proper PlanningError).
        """
        name = ref.name.lower()
        if ref.table is not None:
            qualifier = ref.table.lower()
            if qualifier == self.fact_binding.lower():
                return ("fact", name) if name in self.fact_columns else None
            for index, dim in enumerate(self.dims):
                if qualifier == dim.binding.lower():
                    if name in self.dim_columns[index]:
                        return ("dim", index, name)
                    return None
            return None
        matches = []
        if name in self.fact_columns:
            matches.append(("fact", name))
        for index in range(len(self.dims)):
            if name in self.dim_columns[index]:
                matches.append(("dim", index, name))
        if len(matches) == 1:
            return matches[0]
        return None

    def source_is_numeric(self, source: "tuple") -> bool:
        if source[0] == "const":
            return True
        if source[0] == "fact":
            column = self.fact_columns[source[1]]
        else:
            column = self.dim_columns[source[1]][source[2]]
        return column.sql_type.is_numeric


def _resolve_star(
    catalog: "Catalog", select: ast.Select
) -> "_StarShape | FactorizeDecision":
    """Check the FROM/JOIN clauses form an FK → PK star; resolve tables."""
    source = select.from_sources[0]
    if not isinstance(source, ast.TableName):
        return _refuse("FROM source is a subquery, not a stored table")
    if not catalog.has_table(source.name):
        return _refuse(
            f"FROM source {source.name} is not a stored base table"
        )
    fact_table = catalog.table(source.name)
    fact_binding = source.binding_name
    fact_columns = _column_map(fact_table.schema)
    dims: "list[DimJoin]" = []
    dim_columns: "list[dict[str, object]]" = []
    seen_bindings = {fact_binding.lower()}
    for join in select.joins:
        if join.outer:
            return _refuse(
                "outer join (only INNER joins preserve the sum "
                "decomposition)"
            )
        if join.condition is None:
            return _refuse("cross join (no ON condition to factorize over)")
        if not isinstance(join.source, ast.TableName):
            return _refuse("join source is a subquery, not a stored table")
        if not catalog.has_table(join.source.name):
            return _refuse(
                f"join source {join.source.name} is not a stored base table"
            )
        dim_table = catalog.table(join.source.name)
        dim_binding = join.source.binding_name
        if dim_binding.lower() in seen_bindings:
            return _refuse(f"duplicate binding name {dim_binding}")
        condition = join.condition
        if not (
            isinstance(condition, ast.Binary)
            and condition.op == "="
            and isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return _refuse("join condition is not column = column")
        left, right = condition.left, condition.right
        if left.table is None or right.table is None:
            return _refuse(
                "unqualified column in join condition (qualify both sides)"
            )
        by_binding = {left.table.lower(): left, right.table.lower(): right}
        dim_ref = by_binding.get(dim_binding.lower())
        fact_ref = by_binding.get(fact_binding.lower())
        if dim_ref is None or fact_ref is None or dim_ref is fact_ref:
            return _refuse(
                "join condition does not equate the fact table with the "
                "joined table (snowflake chains are not factorized)"
            )
        primary_key = dim_table.schema.primary_key
        if primary_key is None or dim_ref.name.lower() != primary_key.lower():
            return _refuse(
                f"join key {dim_binding}.{dim_ref.name} is not "
                f"{dim_table.name}'s primary key (multiplicities would "
                "be wrong)"
            )
        if fact_ref.name.lower() not in fact_columns:
            return _refuse(
                f"fact-side join key {fact_ref.name} not found in "
                f"{fact_table.name}"
            )
        dims.append(
            DimJoin(
                table=dim_table.name,
                binding=dim_binding,
                fact_key=fact_ref.name.lower(),
                dim_key=primary_key.lower(),
            )
        )
        dim_columns.append(_column_map(dim_table.schema))
        seen_bindings.add(dim_binding.lower())
    return _StarShape(
        fact_table.name, fact_binding, fact_columns, dims, dim_columns
    )


def _literal_source(node: ast.Expression) -> "tuple | None":
    if (
        isinstance(node, ast.Literal)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return ("const", float(node.value))
    return None


def _list_form_sources(
    call: ast.FuncCall, star: _StarShape
) -> "tuple[tuple, ...] | str":
    """Sources for the list form ``udf(d, x1, ..., xd)``, or a refusal."""
    args = call.args
    if not args:
        return f"{call.name} called without arguments"
    head = args[0]
    if not (
        isinstance(head, ast.Literal)
        and isinstance(head.value, int)
        and not isinstance(head.value, bool)
        and head.value == len(args) - 1
    ):
        return (
            f"{call.name}'s leading argument must be the literal "
            "dimension count"
        )
    sources = []
    for arg in args[1:]:
        constant = _literal_source(arg)
        if constant is not None:
            sources.append(constant)
            continue
        if not isinstance(arg, ast.ColumnRef):
            return (
                f"{call.name} argument {ast.render(arg)} is not a column "
                "or numeric literal"
            )
        source = star.resolve(arg)
        if source is None:
            return f"cannot resolve column {ast.render(arg)} to one base table"
        if not star.source_is_numeric(source):
            return f"column {ast.render(arg)} is not numeric"
        sources.append(source)
    return tuple(sources)


def _builtin_shape(
    call: AggregateCall, star: _StarShape
) -> "tuple | str":
    """Classify one builtin call, or explain why it does not distribute."""
    func = call.call
    if func.distinct:
        return "DISTINCT aggregates do not distribute through the join"
    name = func.name.lower()
    if name == "count":
        if len(func.args) == 1 and isinstance(func.args[0], ast.Star):
            return ("count_star",)
        return "COUNT over an expression is not factorized (use COUNT(*))"
    if name != "sum":
        return (
            f"builtin {func.name} over a join is not factorized "
            "(supported: COUNT(*), SUM of columns and products)"
        )
    if len(func.args) != 1:
        return "SUM takes exactly one argument"
    arg = func.args[0]
    terms: "list[ast.Expression]"
    if isinstance(arg, ast.Binary) and arg.op == "*":
        terms = [arg.left, arg.right]
    else:
        terms = [arg]
    sources = []
    for term in terms:
        constant = _literal_source(term)
        if constant is not None:
            sources.append(constant)
            continue
        if not isinstance(term, ast.ColumnRef):
            return (
                f"SUM argument {ast.render(arg)} is not a column, product "
                "of columns, or numeric literal"
            )
        source = star.resolve(term)
        if source is None:
            return (
                f"cannot resolve column {ast.render(term)} to one base table"
            )
        if not star.source_is_numeric(source):
            return f"column {ast.render(term)} is not numeric"
        sources.append(source)
    return ("sum", tuple(sources))


def _child_expressions(node: ast.Expression) -> "list[ast.Expression]":
    if isinstance(node, ast.Unary):
        return [node.operand]
    if isinstance(node, ast.Binary):
        return [node.left, node.right]
    if isinstance(node, ast.FuncCall):
        return list(node.args)
    if isinstance(node, ast.Case):
        children = [part for when in node.whens for part in when]
        if node.else_result is not None:
            children.append(node.else_result)
        return children
    if isinstance(node, ast.IsNull):
        return [node.operand]
    if isinstance(node, ast.InList):
        return [node.operand, *node.items]
    return []


def _non_aggregate_refs(
    expression: ast.Expression, aggregate_keys: "set[str]"
) -> bool:
    """True if the expression reads a column outside any aggregate call."""
    if isinstance(expression, (ast.ColumnRef, ast.Star)):
        return True
    if (
        isinstance(expression, ast.FuncCall)
        and ast.render(expression) in aggregate_keys
    ):
        return False
    for child in _child_expressions(expression):
        if _non_aggregate_refs(child, aggregate_keys):
            return True
    return False


def plan_factorize(
    catalog: "Catalog",
    select: ast.Select,
    report: "OptimizationReport | None" = None,
) -> FactorizeDecision:
    """Decide whether *select* is a factorizable star aggregation.

    *report*, when the optimizer ran first, gates the apply order: a
    statement the group-by pushdown already restructured is refused
    rather than double-rewritten.
    """
    if not select.joins:
        return _refuse("no joins in statement")
    if report is not None and report.pushed_group_by:
        return _refuse(
            "group-by-before-join rewrite already restructured the "
            "statement (apply order: join elimination -> group-by "
            "pushdown -> factorize)"
        )
    if select.group_by:
        return _refuse(
            "GROUP BY present (factorize handles grand aggregates only)"
        )
    if select.where is not None:
        return _refuse("WHERE clause present (predicates are not pushed)")
    if select.having is not None:
        return _refuse("HAVING clause present")
    if select.order_by or select.limit is not None:
        return _refuse("ORDER BY / LIMIT present")
    if len(select.from_sources) != 1:
        return _refuse("multiple FROM sources (comma joins are not planned)")
    star = _resolve_star(catalog, select)
    if isinstance(star, FactorizeDecision):
        return star
    try:
        calls = find_aggregates(
            [item.expression for item in select.items], catalog.is_aggregate
        )
    except PlanningError as error:
        return _refuse(str(error))
    if not calls:
        return _refuse("no aggregate calls in the select list")
    aggregate_keys = {call.key for call in calls}
    for item in select.items:
        if _non_aggregate_refs(item.expression, aggregate_keys):
            return _refuse(
                "select list reads columns outside aggregate calls"
            )
    decision = FactorizeDecision(
        factorized=True,
        fact_table=star.fact_table,
        fact_binding=star.fact_binding,
        dims=tuple(star.dims),
    )
    udf_calls = [
        call for call in calls if catalog.aggregate_udf(call.name) is not None
    ]
    if udf_calls:
        if len(calls) != 1:
            return _refuse(
                "aggregate UDFs over a join factorize one call at a time"
            )
        call = calls[0]
        if call.call.distinct:
            return _refuse(
                "DISTINCT aggregates do not distribute through the join"
            )
        udf = catalog.aggregate_udf(call.name)
        sources = _list_form_sources(call.call, star)
        if isinstance(sources, str):
            return _refuse(sources)
        if getattr(udf, "summary_cacheable", False) and getattr(
            udf, "matrix_type", None
        ) is not None:
            decision.shape = "summary"
            decision.matrix_type = udf.matrix_type
        elif getattr(udf, "fused_iteration", False):
            decision.shape = "fused"
        else:
            return _refuse(
                f"aggregate UDF {call.name} is neither a summary builder "
                "nor a fused clustering iteration"
            )
        decision.udf_name = call.name
        decision.arg_sources = sources
        return decision
    shapes: "dict[str, tuple]" = {}
    for call in calls:
        if call.name.lower() not in AGGREGATE_BUILTINS:
            return _refuse(f"unknown aggregate {call.name}")
        shape = _builtin_shape(call, star)
        if isinstance(shape, str):
            return _refuse(shape)
        shapes[call.key] = shape
    decision.shape = "builtins"
    decision.builtin_shapes = shapes
    return decision
