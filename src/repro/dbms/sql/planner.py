"""Name binding and select-list analysis.

The planner's job is the bind step a DBMS runs between parse and
execute: resolve column references against the FROM sources, decide
which function names are aggregates (against the catalog), and rewrite
select items so that aggregate subtrees become positional references
into the aggregation output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dbms.sql import ast
from repro.errors import PlanningError


@dataclass(frozen=True)
class BoundColumn:
    """One column of a runtime relation: its source binding and name."""

    binding: str | None
    name: str

    def matches(self, ref: ast.ColumnRef) -> bool:
        if ref.name.lower() != self.name.lower():
            return False
        if ref.table is None:
            return True
        return self.binding is not None and ref.table.lower() == self.binding.lower()

    @property
    def display(self) -> str:
        return self.name


class Binder:
    """Resolves column references to positions in a column list."""

    def __init__(self, columns: list[BoundColumn]) -> None:
        self.columns = columns

    def resolve(self, ref: ast.ColumnRef) -> int:
        matches = [
            position
            for position, column in enumerate(self.columns)
            if column.matches(ref)
        ]
        if not matches:
            known = ", ".join(c.display for c in self.columns)
            raise PlanningError(
                f"unknown column {ref.display()!r} (available: {known})"
            )
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column reference {ref.display()!r}")
        return matches[0]

    def positions_for_star(self, table: str | None) -> list[int]:
        if table is None:
            return list(range(len(self.columns)))
        positions = [
            position
            for position, column in enumerate(self.columns)
            if column.binding is not None
            and column.binding.lower() == table.lower()
        ]
        if not positions:
            raise PlanningError(f"unknown table alias {table!r} in '{table}.*'")
        return positions


# ------------------------------------------------------- aggregate extraction
@dataclass(frozen=True)
class AggregateCall:
    """One distinct aggregate invocation found in a select list/HAVING."""

    call: ast.FuncCall
    key: str

    @property
    def name(self) -> str:
        return self.call.name


def find_aggregates(
    expressions: Iterable[ast.Expression],
    is_aggregate: "callable[[str], bool]",
) -> list[AggregateCall]:
    """All distinct aggregate calls, rejecting nested aggregation."""
    found: dict[str, AggregateCall] = {}

    def visit(node: ast.Expression, inside_aggregate: bool) -> None:
        if isinstance(node, ast.FuncCall) and is_aggregate(node.name):
            if inside_aggregate:
                raise PlanningError(
                    f"aggregate {node.name!r} nested inside another aggregate"
                )
            key = ast.render(node)
            found.setdefault(key, AggregateCall(node, key))
            for arg in node.args:
                visit(arg, True)
            return
        for child in _children(node):
            visit(child, inside_aggregate)

    for expression in expressions:
        visit(expression, False)
    return list(found.values())


def _children(node: ast.Expression) -> list[ast.Expression]:
    if isinstance(node, ast.Unary):
        return [node.operand]
    if isinstance(node, ast.Binary):
        return [node.left, node.right]
    if isinstance(node, ast.FuncCall):
        return list(node.args)
    if isinstance(node, ast.Case):
        children: list[ast.Expression] = []
        for condition, result in node.whens:
            children.extend((condition, result))
        if node.else_result is not None:
            children.append(node.else_result)
        return children
    if isinstance(node, ast.IsNull):
        return [node.operand]
    if isinstance(node, ast.InList):
        return [node.operand, *node.items]
    return []


def contains_aggregate(
    expression: ast.Expression, is_aggregate: "callable[[str], bool]"
) -> bool:
    return bool(find_aggregates([expression], is_aggregate))


def substitute(
    expression: ast.Expression, replacements: dict[str, ast.Expression]
) -> ast.Expression:
    """Replace any subtree whose rendering matches a key in *replacements*.

    Used to rewrite post-aggregation select items: each aggregate call
    and each GROUP BY expression is replaced by a positional reference
    into the aggregation output row.
    """
    key = ast.render(expression)
    if key in replacements:
        return replacements[key]
    if isinstance(expression, ast.Unary):
        return ast.Unary(expression.op, substitute(expression.operand, replacements))
    if isinstance(expression, ast.Binary):
        return ast.Binary(
            expression.op,
            substitute(expression.left, replacements),
            substitute(expression.right, replacements),
        )
    if isinstance(expression, ast.FuncCall):
        return ast.FuncCall(
            expression.name,
            tuple(substitute(arg, replacements) for arg in expression.args),
            expression.distinct,
        )
    if isinstance(expression, ast.Case):
        return ast.Case(
            tuple(
                (substitute(c, replacements), substitute(r, replacements))
                for c, r in expression.whens
            ),
            substitute(expression.else_result, replacements)
            if expression.else_result is not None
            else None,
        )
    if isinstance(expression, ast.IsNull):
        return ast.IsNull(
            substitute(expression.operand, replacements), expression.negated
        )
    if isinstance(expression, ast.InList):
        return ast.InList(
            substitute(expression.operand, replacements),
            tuple(substitute(item, replacements) for item in expression.items),
            expression.negated,
        )
    return expression


def output_name(item: ast.SelectItem, position: int) -> str:
    """The column name a select item produces."""
    if item.alias:
        return item.alias
    if isinstance(item.expression, ast.ColumnRef):
        return item.expression.name
    return f"col{position + 1}"
