"""SQL front end: lexer, AST, parser, planner and executor."""

from repro.dbms.sql.parser import parse_statement, parse_statements

__all__ = ["parse_statement", "parse_statements"]
