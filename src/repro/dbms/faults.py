"""Deterministic fault injection for the execution engine.

A production-scale engine must fail *predictably* under partial faults:
a slow, crashing, or flaky partition task may cost a query, never the
process — no hangs, no leaked work, no silently wrong answers.  This
module provides the controlled way to prove that: a seedable
:class:`FaultPlan` installed on a :class:`~repro.dbms.database.Database`
arms named **fault sites** threaded through the runtime, and the chaos
suite (``tests/test_chaos.py``) asserts that every armed run either
returns the bit-identical fault-free answer or raises a typed
:class:`~repro.errors.ReproError`.

Fault sites (see ``docs/fault_tolerance.md`` for the full matrix):

========================  ====================================================
site                      fires
========================  ====================================================
``partition.scan``        in a row-path partition task, before its scan
``block.materialize``     in a vectorized task, before the numpy block build
``udf.compute_batch``     inside a batched scalar-UDF kernel dispatch
``udf.fused_iter``        in a vectorized task running a fused
                          clustering-iteration UDF, before accumulation
``engine.task``           in the engine's task wrapper, before any task body
``insert.flush``          before each per-partition flush of ``insert_many``
``serving.enqueue``       in the serving layer, before a score request is
                          admitted to the micro-batch queue
``serving.flush``         in the serving layer, before a coalesced batch is
                          dispatched to the batched scoring kernels
``wal.append``            in a durable session, before a committed batch of
                          mutations is appended to the write-ahead log
``wal.fsync``             in a durable session, before the WAL is fsynced
``checkpoint.write``      in a durable session, at each stage of an atomic
                          checkpoint (``stage="snapshot"`` before the
                          temp-directory write, ``stage="manifest"`` before
                          the manifest swap)
========================  ====================================================

Determinism contract: whether a given ``fire()`` call trips is a pure
function of ``(seed, spec, site, partition, per-partition hit count)``
— never of wall clock or thread interleaving — so a chaos schedule
replays identically under any worker count.  ``fire()`` itself is
thread-safe (worker tasks hit sites concurrently).

The hot path pays one attribute check: every instrumented site reads
``faults.enabled`` first, and :data:`NULL_FAULTS` (the default
everywhere) answers ``False`` without a call.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass

from repro.errors import FaultInjected

#: every site name the runtime is instrumented with
FAULT_SITES = frozenset(
    {
        "partition.scan",
        "block.materialize",
        "udf.compute_batch",
        "udf.fused_iter",
        "engine.task",
        "insert.flush",
        "serving.enqueue",
        "serving.flush",
        "wal.append",
        "wal.fsync",
        "checkpoint.write",
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what to do at which site, how often.

    ``kind`` is one of

    * ``"error"`` — raise (``error`` may be an exception class or
      instance; default :class:`~repro.errors.FaultInjected`),
    * ``"delay"`` — sleep ``delay_seconds`` then let the site proceed,
    * ``"flaky"`` — raise on the first ``times`` matching hits, then
      succeed forever (the shape bounded retries must absorb).

    ``times`` caps how many hits trip (``None`` = every matching hit;
    ``"flaky"`` defaults to one).  ``skip_first`` skips the first *n*
    matching hits before the fault arms, so "fail the second scan" is
    expressible.  ``partition`` restricts the fault to one partition
    index (``None`` matches any).  ``probability`` thins matching hits
    through the plan's seeded, interleaving-independent RNG.
    """

    site: str
    kind: str = "error"
    error: type[BaseException] | BaseException | None = None
    delay_seconds: float = 0.0
    times: int | None = None
    skip_first: int = 0
    partition: int | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if self.kind not in ("error", "delay", "flaky"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "delay" and self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    @property
    def trip_limit(self) -> int | None:
        """How many matching hits actually trip (flaky defaults to 1)."""
        if self.kind == "flaky" and self.times is None:
            return 1
        return self.times


class NullFaults:
    """Fault injection disabled: the default on every database.

    ``enabled`` is a class attribute read by every instrumented site, so
    the un-injected hot path costs exactly one attribute check and zero
    calls.
    """

    __slots__ = ()
    enabled = False

    def fire(self, site: str, **attributes: object) -> None:  # pragma: no cover
        return None


#: the shared no-op plan — one instance, nothing ever fires
NULL_FAULTS = NullFaults()


class FaultPlan:
    """A seedable schedule of faults, installed via ``Database(faults=...)``.

    Thread-safety: ``fire()`` may be called concurrently from engine
    worker threads; hit bookkeeping is guarded by one lock.  Probability
    draws are keyed by ``(seed, spec index, site, partition, hit
    count)`` rather than consumed from a shared stream, so the decision
    for "partition 3's second scan" is identical no matter how threads
    interleave.
    """

    enabled = True

    def __init__(
        self, specs: "list[FaultSpec] | None" = None, seed: int = 0
    ) -> None:
        self.seed = seed
        self._specs: list[FaultSpec] = []
        self._lock = threading.Lock()
        #: matching-hit counters per (spec index, partition)
        self._hits: dict[tuple[int, int | None], int] = {}
        #: total faults actually tripped, per site (test introspection)
        self.tripped: dict[str, int] = {}
        for spec in specs or []:
            self.add(spec)

    # ----------------------------------------------------------- arming
    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Arm one spec (chainable)."""
        self._specs.append(spec)
        return self

    def fail(self, site: str, **kwargs: object) -> "FaultPlan":
        """Shorthand: arm an always-raise fault at *site*."""
        return self.add(FaultSpec(site, "error", **kwargs))  # type: ignore[arg-type]

    def flaky(self, site: str, times: int = 1, **kwargs: object) -> "FaultPlan":
        """Shorthand: fail the first *times* hits, then succeed."""
        return self.add(FaultSpec(site, "flaky", times=times, **kwargs))  # type: ignore[arg-type]

    def delay(
        self, site: str, seconds: float, **kwargs: object
    ) -> "FaultPlan":
        """Shorthand: sleep *seconds* at *site* before proceeding."""
        return self.add(
            FaultSpec(site, "delay", delay_seconds=seconds, **kwargs)  # type: ignore[arg-type]
        )

    @property
    def specs(self) -> "tuple[FaultSpec, ...]":
        return tuple(self._specs)

    # ----------------------------------------------------------- firing
    def fire(self, site: str, **attributes: object) -> None:
        """Evaluate every armed spec against one site hit.

        Called by instrumented code with site-specific attributes
        (``partition=...``, ``udf=...``).  Raises the first spec that
        trips; delays stack before any raise check of later specs.
        """
        partition = attributes.get("partition")
        if not isinstance(partition, int):
            partition = None
        to_raise: BaseException | None = None
        delay = 0.0
        with self._lock:
            for index, spec in enumerate(self._specs):
                if spec.site != site:
                    continue
                if spec.partition is not None and spec.partition != partition:
                    continue
                key = (index, partition)
                hit = self._hits.get(key, 0)
                self._hits[key] = hit + 1
                if hit < spec.skip_first:
                    continue
                armed_hit = hit - spec.skip_first
                limit = spec.trip_limit
                if limit is not None and armed_hit >= limit:
                    continue
                if spec.probability < 1.0 and not self._draw(
                    index, site, partition, hit, spec.probability
                ):
                    continue
                self.tripped[site] = self.tripped.get(site, 0) + 1
                if spec.kind == "delay":
                    delay += spec.delay_seconds
                elif to_raise is None:
                    to_raise = self._build_error(spec, site, attributes)
        if delay:
            time.sleep(delay)
        if to_raise is not None:
            raise to_raise

    def _draw(
        self,
        spec_index: int,
        site: str,
        partition: int | None,
        hit: int,
        probability: float,
    ) -> bool:
        # The decision key is hashed with sha256, not hash(): Python's
        # string hashing varies with PYTHONHASHSEED, and a chaos
        # schedule must replay identically across processes too.
        key = f"{self.seed}|{spec_index}|{site}|{partition}|{hit}"
        digest = hashlib.sha256(key.encode()).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        return rng.random() < probability

    @staticmethod
    def _build_error(
        spec: FaultSpec, site: str, attributes: dict[str, object]
    ) -> BaseException:
        if spec.error is None:
            return FaultInjected(site, **attributes)  # type: ignore[arg-type]
        if isinstance(spec.error, BaseException):
            return spec.error
        return spec.error(f"injected fault at {site!r}")

    # ------------------------------------------------- process-pool support
    def __getstate__(self) -> dict[str, object]:
        """Pickle support: a plan snapshot ships to pool workers.

        The lock is dropped (the worker rebuilds one); everything else —
        specs, seed, hit counters, trip counters — travels, so the
        worker's ``fire()`` decisions continue exactly where the
        coordinator's plan left off.  Trip decisions are keyed on
        per-``(spec, partition)`` hit counts, and a process worker owns
        its partition's hits for the duration of its task, so evaluating
        the snapshot in the child is equivalent to evaluating the shared
        plan under a thread.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def fork(self) -> "FaultPlan":
        """A detached snapshot of this plan, safe to pickle.

        ``ProcessPoolExecutor`` pickles submitted arguments from a
        feeder thread, which would race ``fire()`` mutating ``_hits``
        on the live plan ("dict changed size during iteration").  A
        fork copies the counters *under the lock* in the submitting
        thread, so the snapshot shipped to the worker is internally
        consistent and subsequent coordinator-side fires never touch
        it.
        """
        clone = FaultPlan.__new__(FaultPlan)
        with self._lock:
            clone.seed = self.seed
            clone._specs = list(self._specs)
            clone._hits = dict(self._hits)
            clone.tripped = dict(self.tripped)
        clone._lock = threading.Lock()
        return clone

    def counter_snapshot(
        self,
    ) -> "tuple[dict[tuple[int, int | None], int], dict[str, int]]":
        """Copies of the hit and trip counters (delta baselines)."""
        with self._lock:
            return dict(self._hits), dict(self.tripped)

    def counter_deltas(
        self,
        baseline_hits: "dict[tuple[int, int | None], int]",
        baseline_tripped: "dict[str, int]",
    ) -> "tuple[dict[tuple[int, int | None], int], dict[str, int]]":
        """Counter growth since a :meth:`counter_snapshot` baseline.

        Workers call this after running a task against their plan
        snapshot and ship the (tiny) deltas home with the result —
        for **failed** attempts too, which is what lets a bounded retry
        absorb a flaky fault: the retry resubmits with a fresh snapshot
        that already includes the failed attempt's hits.
        """
        with self._lock:
            hits_delta = {
                key: count - baseline_hits.get(key, 0)
                for key, count in self._hits.items()
                if count != baseline_hits.get(key, 0)
            }
            tripped_delta = {
                site: count - baseline_tripped.get(site, 0)
                for site, count in self.tripped.items()
                if count != baseline_tripped.get(site, 0)
            }
        return hits_delta, tripped_delta

    def absorb(
        self,
        hits_delta: "dict[tuple[int, int | None], int]",
        tripped_delta: "dict[str, int]",
    ) -> None:
        """Fold a worker's counter deltas into this (coordinator) plan."""
        if not hits_delta and not tripped_delta:
            return
        with self._lock:
            for key, count in hits_delta.items():
                self._hits[key] = self._hits.get(key, 0) + count
            for site, count in tripped_delta.items():
                self.tripped[site] = self.tripped.get(site, 0) + count

    # ---------------------------------------------------------- introspection
    def trips(self, site: str | None = None) -> int:
        """Faults actually tripped, at one site or in total."""
        if site is not None:
            return self.tripped.get(site, 0)
        return sum(self.tripped.values())

    def reset(self) -> None:
        """Forget all hit counters (the armed specs stay)."""
        with self._lock:
            self._hits.clear()
            self.tripped.clear()

    def __repr__(self) -> str:
        armed = ", ".join(
            f"{spec.site}:{spec.kind}" for spec in self._specs
        ) or "nothing armed"
        return f"FaultPlan(seed={self.seed}, {armed})"
