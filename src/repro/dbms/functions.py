"""Builtin SQL functions: scalar and aggregate.

Scalar builtins are plain Python callables over row values (NULL-aware).
Aggregate builtins implement the same four-phase protocol as aggregate
UDFs (initialize → accumulate → merge partials → finalize), so the
executor runs builtins and UDFs through one pipeline — mirroring how the
paper's aggregate UDF slots in beside ``sum()`` in Teradata.

Beyond the standard set, the two-variable regression/correlation
aggregates (``corr``, ``regr_slope``, ``regr_intercept``) are provided
because the paper notes Teradata ships them *for two dimensions only* —
the whole point of the nLQ UDF is generalizing them to d dimensions.
"""

from __future__ import annotations

import fnmatch
import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ExecutionError


# ------------------------------------------------------------ scalar builtins
def _null_propagating(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap *fn* so any NULL argument yields NULL (SQL semantics)."""

    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _sql_sqrt(value: float) -> float:
    if value < 0:
        raise ExecutionError(f"sqrt of negative value {value}")
    return math.sqrt(value)


def _sql_ln(value: float) -> float:
    if value <= 0:
        raise ExecutionError(f"ln of non-positive value {value}")
    return math.log(value)


def _sql_mod(left: float, right: float) -> float:
    if right == 0:
        raise ExecutionError("MOD by zero")
    result = math.fmod(left, right)
    if isinstance(left, int) and isinstance(right, int):
        return int(result)
    return result


def _sql_like(value: str, pattern: str) -> bool:
    translated = (
        pattern.replace("\\", "\\\\")
        .replace("*", "[*]")
        .replace("?", "[?]")
        .replace("%", "*")
        .replace("_", "?")
    )
    return fnmatch.fnmatchcase(str(value), translated)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left: Any, right: Any) -> Any:
    if left is None:
        return None
    return None if left == right else left


SCALAR_BUILTINS: dict[str, Callable[..., Any]] = {
    "abs": _null_propagating(abs),
    "sqrt": _null_propagating(_sql_sqrt),
    "exp": _null_propagating(math.exp),
    "ln": _null_propagating(_sql_ln),
    "log": _null_propagating(_sql_ln),
    "power": _null_propagating(lambda base, exponent: float(base) ** exponent),
    "floor": _null_propagating(lambda v: float(math.floor(v))),
    "ceil": _null_propagating(lambda v: float(math.ceil(v))),
    "ceiling": _null_propagating(lambda v: float(math.ceil(v))),
    "round": _null_propagating(lambda v, nd=0: round(float(v), int(nd))),
    "sign": _null_propagating(lambda v: float((v > 0) - (v < 0))),
    "mod": _null_propagating(_sql_mod),
    "least": _null_propagating(min),
    "greatest": _null_propagating(max),
    "coalesce": _coalesce,
    "nullif": _nullif,
    "like": _null_propagating(_sql_like),
    "concat": _null_propagating(lambda a, b: f"{a}{b}"),
    "upper": _null_propagating(lambda s: str(s).upper()),
    "lower": _null_propagating(lambda s: str(s).lower()),
    "length": _null_propagating(lambda s: len(str(s))),
    "substr": _null_propagating(
        lambda s, start, count=None: str(s)[
            int(start) - 1 : None if count is None else int(start) - 1 + int(count)
        ]
    ),
    "cast_float": _null_propagating(float),
    "cast_int": _null_propagating(int),
}

#: scalar builtins that the vectorized evaluator can map over numpy arrays
VECTORIZABLE_SCALARS = frozenset({"abs", "sqrt", "exp", "ln", "log", "power"})


# --------------------------------------------------------- aggregate builtins
class AggregateFunction:
    """The four-phase aggregate protocol (builtin flavor).

    The aggregate-UDF class in :mod:`repro.dbms.udf` implements the same
    protocol with the paper's extra constraints layered on top; the
    executor drives both identically.
    """

    #: number of arguments the aggregate takes (None = variadic)
    arity: int | None = 1
    #: whether NULL arguments are skipped (SQL aggregates ignore NULLs)
    skips_nulls: bool = True

    def initialize(self) -> Any:
        raise NotImplementedError

    def accumulate(self, state: Any, args: Sequence[Any]) -> Any:
        raise NotImplementedError

    def merge(self, state: Any, other: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        raise NotImplementedError

    def accumulate_vector(
        self, state: Any, vectors: Sequence[np.ndarray], rows: int
    ) -> Any:
        """Optional vectorized accumulate over column blocks.

        *vectors* holds one float array per argument with NaN for NULL;
        *rows* is the block's row count (needed by COUNT(*)).  Returns
        ``NotImplemented`` when the aggregate has no vector path, in
        which case the executor falls back to per-row accumulation.
        The vector path must produce exactly the state the row path
        would (tests enforce this).
        """
        return NotImplemented


class _SumAggregate(AggregateFunction):
    def initialize(self) -> Any:
        return None

    def accumulate(self, state: Any, args: Sequence[Any]) -> Any:
        (value,) = args
        if state is None:
            return value
        return state + value

    def merge(self, state: Any, other: Any) -> Any:
        if state is None:
            return other
        if other is None:
            return state
        return state + other

    def finalize(self, state: Any) -> Any:
        return state

    def accumulate_vector(
        self, state: Any, vectors: Sequence[np.ndarray], rows: int
    ) -> Any:
        values = vectors[0]
        mask = ~np.isnan(values)
        if not mask.any():
            return state
        total = float(values[mask].sum())
        return total if state is None else state + total


class _CountAggregate(AggregateFunction):
    arity = None
    skips_nulls = False

    def initialize(self) -> int:
        return 0

    def accumulate(self, state: int, args: Sequence[Any]) -> int:
        # COUNT(*) receives no args; COUNT(expr) skips NULLs itself.
        if args and args[0] is None:
            return state
        return state + 1

    def merge(self, state: int, other: int) -> int:
        return state + other

    def finalize(self, state: int) -> int:
        return state

    def accumulate_vector(
        self, state: int, vectors: Sequence[np.ndarray], rows: int
    ) -> int:
        if not vectors:
            return state + rows
        return state + int((~np.isnan(vectors[0])).sum())


class _AvgAggregate(AggregateFunction):
    def initialize(self) -> tuple[float, int]:
        return (0.0, 0)

    def accumulate(self, state: tuple[float, int], args: Sequence[Any]) -> Any:
        total, count = state
        return (total + args[0], count + 1)

    def merge(self, state: Any, other: Any) -> Any:
        return (state[0] + other[0], state[1] + other[1])

    def finalize(self, state: tuple[float, int]) -> Any:
        total, count = state
        return None if count == 0 else total / count

    def accumulate_vector(
        self, state: tuple[float, int], vectors: Sequence[np.ndarray], rows: int
    ) -> tuple[float, int]:
        values = vectors[0]
        mask = ~np.isnan(values)
        total, count = state
        return (total + float(values[mask].sum()), count + int(mask.sum()))


class _MinAggregate(AggregateFunction):
    def initialize(self) -> Any:
        return None

    def accumulate(self, state: Any, args: Sequence[Any]) -> Any:
        (value,) = args
        return value if state is None or value < state else state

    def merge(self, state: Any, other: Any) -> Any:
        if state is None:
            return other
        if other is None:
            return state
        return min(state, other)

    def finalize(self, state: Any) -> Any:
        return state

    def accumulate_vector(
        self, state: Any, vectors: Sequence[np.ndarray], rows: int
    ) -> Any:
        values = vectors[0]
        mask = ~np.isnan(values)
        if not mask.any():
            return state
        low = float(values[mask].min())
        return low if state is None or low < state else state


class _MaxAggregate(AggregateFunction):
    def initialize(self) -> Any:
        return None

    def accumulate(self, state: Any, args: Sequence[Any]) -> Any:
        (value,) = args
        return value if state is None or value > state else state

    def merge(self, state: Any, other: Any) -> Any:
        if state is None:
            return other
        if other is None:
            return state
        return max(state, other)

    def finalize(self, state: Any) -> Any:
        return state

    def accumulate_vector(
        self, state: Any, vectors: Sequence[np.ndarray], rows: int
    ) -> Any:
        values = vectors[0]
        mask = ~np.isnan(values)
        if not mask.any():
            return state
        high = float(values[mask].max())
        return high if state is None or high > state else state


class _MomentsState:
    """Shared state for variance/correlation aggregates: the 1-or-2
    dimensional version of the paper's (n, L, Q)."""

    __slots__ = ("n", "sx", "sy", "sxx", "syy", "sxy")

    def __init__(self) -> None:
        self.n = 0.0
        self.sx = 0.0
        self.sy = 0.0
        self.sxx = 0.0
        self.syy = 0.0
        self.sxy = 0.0

    def add(self, x: float, y: float = 0.0) -> None:
        self.n += 1.0
        self.sx += x
        self.sy += y
        self.sxx += x * x
        self.syy += y * y
        self.sxy += x * y

    def merge(self, other: "_MomentsState") -> None:
        self.n += other.n
        self.sx += other.sx
        self.sy += other.sy
        self.sxx += other.sxx
        self.syy += other.syy
        self.sxy += other.sxy


class _VarianceAggregate(AggregateFunction):
    def __init__(self, sample: bool) -> None:
        self._sample = sample

    def initialize(self) -> _MomentsState:
        return _MomentsState()

    def accumulate(self, state: _MomentsState, args: Sequence[Any]) -> Any:
        state.add(float(args[0]))
        return state

    def merge(self, state: _MomentsState, other: _MomentsState) -> Any:
        state.merge(other)
        return state

    def accumulate_vector(
        self, state: _MomentsState, vectors: Sequence[np.ndarray], rows: int
    ) -> _MomentsState:
        values = vectors[0]
        mask = ~np.isnan(values)
        kept = values[mask]
        state.n += float(kept.size)
        state.sx += float(kept.sum())
        state.sxx += float((kept * kept).sum())
        return state

    def finalize(self, state: _MomentsState) -> Any:
        denominator = state.n - 1.0 if self._sample else state.n
        if denominator <= 0:
            return None
        mean = state.sx / state.n
        return max(state.sxx / state.n - mean * mean, 0.0) * (
            state.n / denominator
        )


class _TwoVariableAggregate(AggregateFunction):
    """Base for corr / regr_slope / regr_intercept (two arguments)."""

    arity = 2

    def initialize(self) -> _MomentsState:
        return _MomentsState()

    def accumulate(self, state: _MomentsState, args: Sequence[Any]) -> Any:
        state.add(float(args[0]), float(args[1]))
        return state

    def merge(self, state: _MomentsState, other: _MomentsState) -> Any:
        state.merge(other)
        return state

    def accumulate_vector(
        self, state: _MomentsState, vectors: Sequence[np.ndarray], rows: int
    ) -> _MomentsState:
        xs, ys = vectors[0], vectors[1]
        mask = ~(np.isnan(xs) | np.isnan(ys))
        x, y = xs[mask], ys[mask]
        state.n += float(x.size)
        state.sx += float(x.sum())
        state.sy += float(y.sum())
        state.sxx += float((x * x).sum())
        state.syy += float((y * y).sum())
        state.sxy += float((x * y).sum())
        return state


class _CorrAggregate(_TwoVariableAggregate):
    def finalize(self, state: _MomentsState) -> Any:
        n = state.n
        if n == 0:
            return None
        num = n * state.sxy - state.sx * state.sy
        den_x = n * state.sxx - state.sx * state.sx
        den_y = n * state.syy - state.sy * state.sy
        if den_x <= 0 or den_y <= 0:
            return None
        return num / math.sqrt(den_x * den_y)


class _RegrSlopeAggregate(_TwoVariableAggregate):
    """Slope of the least-squares line of the first argument (dependent)
    on the second (independent), following the SQL standard's REGR_SLOPE
    argument order."""

    def finalize(self, state: _MomentsState) -> Any:
        n = state.n
        if n == 0:
            return None
        den = n * state.syy - state.sy * state.sy
        if den == 0:
            return None
        return (n * state.sxy - state.sx * state.sy) / den


class _RegrInterceptAggregate(_TwoVariableAggregate):
    def finalize(self, state: _MomentsState) -> Any:
        n = state.n
        if n == 0:
            return None
        den = n * state.syy - state.sy * state.sy
        if den == 0:
            return None
        slope = (n * state.sxy - state.sx * state.sy) / den
        return state.sx / n - slope * state.sy / n


AGGREGATE_BUILTINS: dict[str, Callable[[], AggregateFunction]] = {
    "sum": _SumAggregate,
    "count": _CountAggregate,
    "avg": _AvgAggregate,
    "min": _MinAggregate,
    "max": _MaxAggregate,
    "var_samp": lambda: _VarianceAggregate(sample=True),
    "var_pop": lambda: _VarianceAggregate(sample=False),
    "stddev_samp": lambda: _StddevAggregate(sample=True),
    "stddev_pop": lambda: _StddevAggregate(sample=False),
    "corr": _CorrAggregate,
    "regr_slope": _RegrSlopeAggregate,
    "regr_intercept": _RegrInterceptAggregate,
}


class _StddevAggregate(_VarianceAggregate):
    def finalize(self, state: _MomentsState) -> Any:
        variance = super().finalize(state)
        return None if variance is None else math.sqrt(variance)


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATE_BUILTINS
