"""Persistent on-disk columnar partition blocks.

The process-pool execution path (``Database(executor_kind="process")``)
cannot share Python object graphs with worker processes the way threads
do, and pickling partition data per task would erase the benefit of
leaving the GIL.  This module gives every ``(table, version, partition)``
a **self-describing block file** that workers open read-only via
``mmap`` — the parent ships only a tiny descriptor ``(store root, table,
version, partition id)`` and the worker pages in exactly the bytes its
scan touches, with zero copies and zero pickling of row data.

Format (everything little-endian, version tag ``RCOL1``)::

    magic "RCOL1\\n" | u64 header_len | header JSON | pad to 64
    data section   — per numeric column: 8*rows bytes (i8 or f8 lane),
                     then its null bitmap ((rows+7)//8 bytes) when the
                     column has NULLs
    object section — one pickle holding the non-numeric columns

Column lanes are **exact**: a column whose values are all Python ``int``
(within int64) becomes an ``<i8`` lane, all-``float`` becomes ``<f8``
(NaN stays representable *data* because NULLs live in the bitmap, never
in the lane), and anything else — strings, mixed int/float, oversize
ints — goes to the pickled object sidecar verbatim.  Reading a block
back therefore reproduces each stored value bit-for-bit and type-for-
type, which is what lets the process executor keep the engine's
bit-identical merge contract.

Writes go through the same atomic discipline as the persistence layer:
temp sibling, optional fsync, ``os.replace`` — a reader can never
observe a half-written block (:func:`atomic_write_bytes` is shared with
:mod:`repro.dbms.persistence`).

A :class:`ColumnarStore` manages the directory layout
``root/<table>/v<version>/p<pid>.blk``, publishing the current table
version on demand and garbage-collecting stale versions (the latest two
are kept so a scan that started just before a mutation can still open
its files; an mmap that is already open survives the unlink regardless,
POSIX-style).
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.errors import ExportError

_MAGIC = b"RCOL1\n"
_ALIGN = 64
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
#: stale table versions kept next to the current one (see module docs)
_KEEP_VERSIONS = 2


def atomic_write_bytes(path: Path, payload: bytes, fsync: bool = False) -> None:
    """Write *payload* to a temp sibling, optionally fsync, atomically
    rename over *path* — the one write discipline every durable artifact
    of this substrate uses (CSV snapshots, catalogs, columnar blocks)."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise ExportError(f"cannot write {path}: {exc}") from exc


def _classify_column(values: Sequence[Any]) -> tuple[str, bool]:
    """``(lane kind, has nulls)`` for one column's stored values.

    Exactness rules: only values that are *exactly* ``int`` (within
    int64) or *exactly* ``float`` ride a numeric lane — ``bool`` (a
    subclass of int), oversize ints, strings and mixed-type columns all
    go to the object sidecar so the round trip is type-preserving.
    """
    kind: str | None = None
    has_null = False
    for value in values:
        if value is None:
            has_null = True
            continue
        value_type = type(value)
        if value_type is int:
            if not _INT64_MIN <= value <= _INT64_MAX:
                return "obj", has_null
            if kind is None:
                kind = "i8"
            elif kind != "i8":
                return "obj", has_null
        elif value_type is float:
            if kind is None:
                kind = "f8"
            elif kind != "f8":
                return "obj", has_null
        else:
            return "obj", has_null
    # An empty or all-NULL column takes the cheapest lane.
    return kind or "i8", has_null


def _null_bitmap(values: Sequence[Any], rows: int) -> bytes:
    bits = bytearray((rows + 7) // 8)
    for index, value in enumerate(values):
        if value is None:
            bits[index >> 3] |= 1 << (index & 7)
    return bytes(bits)


def encode_block(columns: Sequence[Sequence[Any]]) -> bytes:
    """Serialize per-column value lists into one block-file payload."""
    rows = len(columns[0]) if columns else 0
    for column in columns:
        if len(column) != rows:
            raise ExportError("columnar block columns differ in length")
    header_columns: list[dict[str, Any]] = []
    lanes: list[bytes] = []
    objects: dict[int, list[Any]] = {}
    offset = 0
    for index, column in enumerate(columns):
        kind, has_null = _classify_column(column)
        if kind == "obj":
            header_columns.append({"kind": "obj"})
            objects[index] = list(column)
            continue
        dtype = "<i8" if kind == "i8" else "<f8"
        if has_null:
            filler = 0 if kind == "i8" else 0.0
            dense = [filler if v is None else v for v in column]
        else:
            dense = list(column)
        lane = np.asarray(dense, dtype=dtype).tobytes()
        spec: dict[str, Any] = {"kind": kind, "offset": offset}
        offset += len(lane)
        if has_null:
            bitmap = _null_bitmap(column, rows)
            lane += bitmap
            spec["nulls"] = offset
            offset += len(bitmap)
        lanes.append(lane)
        header_columns.append(spec)
    object_blob = pickle.dumps(objects, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "rows": rows,
        "columns": header_columns,
        "data_bytes": offset,
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode("ascii")
    prefix_len = len(_MAGIC) + 8 + len(header_blob)
    pad = (-prefix_len) % _ALIGN
    parts = [
        _MAGIC,
        len(header_blob).to_bytes(8, "little"),
        header_blob,
        b"\0" * pad,
        *lanes,
        object_blob,
    ]
    return b"".join(parts)


class BlockReader:
    """One mmap'd block file, decoded lazily.

    The mapping is opened read-only; numeric lanes are served as
    zero-copy numpy views over the mapped pages, so a worker process
    touching three columns of a fifty-column block pages in only those
    three lanes.  Call :meth:`drop_pages` after a scan to hand resident
    pages back to the OS (``MADV_DONTNEED``) — the out-of-core
    benchmark's peak-RSS guarantee rides on this.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        try:
            with self.path.open("rb") as handle:
                self._mm = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as exc:
            raise ExportError(f"cannot map block {self.path}: {exc}") from exc
        if self._mm[: len(_MAGIC)] != _MAGIC:
            self._mm.close()
            raise ExportError(f"{self.path} is not a columnar block")
        header_len = int.from_bytes(
            self._mm[len(_MAGIC) : len(_MAGIC) + 8], "little"
        )
        header = json.loads(
            self._mm[len(_MAGIC) + 8 : len(_MAGIC) + 8 + header_len]
        )
        prefix = len(_MAGIC) + 8 + header_len
        self._data_start = prefix + ((-prefix) % _ALIGN)
        self.rows: int = header["rows"]
        self._columns: list[dict[str, Any]] = header["columns"]
        self._object_start = self._data_start + header["data_bytes"]
        self._objects: dict[int, list[Any]] | None = None

    @property
    def width(self) -> int:
        return len(self._columns)

    def _lane(self, spec: dict[str, Any]) -> np.ndarray:
        dtype = "<i8" if spec["kind"] == "i8" else "<f8"
        return np.frombuffer(
            self._mm,
            dtype=dtype,
            count=self.rows,
            offset=self._data_start + spec["offset"],
        )

    def _null_indices(self, spec: dict[str, Any]) -> np.ndarray | None:
        nulls = spec.get("nulls")
        if nulls is None:
            return None
        bitmap = np.frombuffer(
            self._mm,
            dtype=np.uint8,
            count=(self.rows + 7) // 8,
            offset=self._data_start + nulls,
        )
        return np.flatnonzero(
            np.unpackbits(bitmap, bitorder="little")[: self.rows]
        )

    def _object_columns(self) -> dict[int, list[Any]]:
        if self._objects is None:
            self._objects = pickle.loads(self._mm[self._object_start :])
        return self._objects

    def column_values(self, position: int) -> list[Any]:
        """The exact stored Python values of one column."""
        spec = self._columns[position]
        if spec["kind"] == "obj":
            return list(self._object_columns()[position])
        values: list[Any] = self._lane(spec).tolist()
        null_idx = self._null_indices(spec)
        if null_idx is not None:
            for index in null_idx.tolist():
                values[index] = None
        return values

    def float_column(self, position: int) -> np.ndarray:
        """One column as float64 with NULL as NaN — the exact values
        :meth:`repro.dbms.storage.Partition._column_as_floats` produces
        for the same stored column."""
        spec = self._columns[position]
        if spec["kind"] == "obj":
            return np.asarray(
                [
                    np.nan if v is None else v
                    for v in self._object_columns()[position]
                ],
                dtype=float,
            )
        lane = self._lane(spec)
        null_idx = self._null_indices(spec)
        if spec["kind"] == "i8":
            out = lane.astype(np.float64)
        elif null_idx is not None:
            out = lane.astype(np.float64, copy=True)
        else:
            return lane.view()
        if null_idx is not None:
            out[null_idx] = np.nan
        return out

    def float_matrix(self, positions: Sequence[int]) -> np.ndarray:
        """Selected columns as a ``(rows, k)`` float block (NULL→NaN),
        matching :meth:`repro.dbms.storage.Partition.numeric_matrix`."""
        out = np.empty((self.rows, len(positions)))
        for out_index, position in enumerate(positions):
            out[:, out_index] = self.float_column(position)
        return out

    def row_tuples(self) -> list[tuple]:
        """All rows, exactly as ``Partition.rows()`` yields them."""
        if self.rows == 0:
            return []
        return list(
            zip(*(self.column_values(i) for i in range(self.width)))
        )

    def drop_pages(self) -> None:
        """Advise the OS to reclaim this mapping's resident pages."""
        try:
            self._mm.madvise(mmap.MADV_DONTNEED)
        except (AttributeError, OSError, ValueError):  # pragma: no cover
            pass

    def close(self) -> None:
        self._objects = None
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover - views alive
            pass


class ColumnarStore:
    """Directory of published partition blocks, keyed by table version.

    ``publish`` is idempotent and cheap when current: it writes one
    block file per non-empty partition the first time a table version is
    seen, then answers from a path check.  Old versions are garbage-
    collected down to the latest :data:`_KEEP_VERSIONS`.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        #: lifetime accounting (tests and the benchmark read these)
        self.blocks_written = 0
        self.bytes_written = 0
        self._published: dict[str, int] = {}

    def table_dir(self, table_name: str) -> Path:
        return self.root / table_name.lower()

    def version_dir(self, table_name: str, version: int) -> Path:
        return self.table_dir(table_name) / f"v{version}"

    def block_path(self, table_name: str, version: int, pid: int) -> Path:
        return self.version_dir(table_name, version) / f"p{pid}.blk"

    def publish(self, table: Any) -> dict[str, Any]:
        """Ensure block files exist for *table*'s current version.

        Returns the descriptor the executor ships to workers: plain
        strings and ints, nothing else — the whole point is that task
        submission never pickles data.
        """
        name = table.name.lower()
        version = table.version
        partitions = [
            index
            for index, partition in enumerate(table.partitions)
            if partition.row_count
        ]
        fresh = self._published.get(name) != version
        if fresh:
            target = self.version_dir(name, version)
            target.mkdir(parents=True, exist_ok=True)
            for index in partitions:
                path = self.block_path(name, version, index)
                if path.exists():
                    continue
                partition = table.partitions[index]
                payload = encode_block(
                    [
                        partition.column(position)
                        for position in range(partition.width)
                    ]
                )
                atomic_write_bytes(path, payload)
                self.blocks_written += 1
                self.bytes_written += len(payload)
            self._gc(name, version)
            self._published[name] = version
        return {
            "root": str(self.root),
            "table": name,
            "version": version,
            "partitions": partitions,
            # Whether this call had to materialize the version (the
            # executor reports repeat statements as block-cache hits —
            # deterministic at any worker count, unlike per-process
            # reader caches)
            "fresh": fresh,
        }

    def _gc(self, name: str, current: int) -> None:
        table_dir = self.table_dir(name)
        try:
            entries = list(table_dir.iterdir())
        except OSError:  # pragma: no cover - dir raced away
            return
        versions = sorted(
            int(entry.name[1:])
            for entry in entries
            if entry.is_dir()
            and entry.name.startswith("v")
            and entry.name[1:].isdigit()
        )
        for version in versions:
            if version >= current - (_KEEP_VERSIONS - 1):
                continue
            shutil.rmtree(table_dir / f"v{version}", ignore_errors=True)

    def forget(self, table_name: str) -> None:
        """Drop a table's published blocks (DROP TABLE / truncate)."""
        self._published.pop(table_name.lower(), None)
        shutil.rmtree(self.table_dir(table_name), ignore_errors=True)
