"""Wall-clock observability for query execution.

The cost model (:mod:`repro.dbms.cost`) answers "what would this query
have cost on the paper's 2007 hardware?" — an *analytical* number.  This
module answers the orthogonal question "what did this query actually
cost *here*, in real seconds, stage by stage?", which is what the
parallel engine's speedups are measured against.

A :class:`QueryMetrics` record is attached to every
:class:`~repro.dbms.database.QueryResult`.  For aggregate queries the
executor fills the four run-time stages of Section 3.4:

* ``scan_seconds`` — materializing partition blocks / iterating rows,
* ``accumulate_seconds`` — folding rows or blocks into partial states,
* ``merge_seconds`` — combining per-partition partials in partition
  order,
* ``finalize_seconds`` — packing final values (phase 4) and projecting
  the result rows.

Under parallel execution the scan/accumulate stages overlap across
worker threads, so their per-stage seconds are *summed task time*
(comparable to CPU time), while ``total_seconds`` is the end-to-end wall
clock of the statement; ``total_seconds`` shrinking while the stage sums
stay put is exactly what a successful parallel run looks like.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class QueryMetrics:
    """Per-statement wall-clock measurements (real seconds, not simulated)."""

    #: configured worker count of the engine that ran the statement
    workers: int = 1
    #: end-to-end wall clock of executing the statement
    total_seconds: float = 0.0
    #: summed per-task time spent materializing partition blocks / rows
    scan_seconds: float = 0.0
    #: summed per-task time spent folding rows/blocks into partial states
    accumulate_seconds: float = 0.0
    #: time spent merging per-partition partials (always serial, in order)
    merge_seconds: float = 0.0
    #: time spent finalizing states and building the result rows
    finalize_seconds: float = 0.0
    #: physical rows folded into aggregate states
    rows_processed: int = 0
    #: non-empty partitions that contributed a partial state
    partitions_processed: int = 0
    #: per-partition tasks handed to the engine (0 = no aggregate stage)
    parallel_tasks: int = 0
    #: number of groups produced by aggregation (1 for a grand aggregate)
    groups: int = 0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "workers": self.workers,
            "total_seconds": self.total_seconds,
            "scan_seconds": self.scan_seconds,
            "accumulate_seconds": self.accumulate_seconds,
            "merge_seconds": self.merge_seconds,
            "finalize_seconds": self.finalize_seconds,
            "rows_processed": self.rows_processed,
            "partitions_processed": self.partitions_processed,
            "parallel_tasks": self.parallel_tasks,
            "groups": self.groups,
        }

    @property
    def stage_seconds(self) -> dict[str, float]:
        """The four run-time stages, in the paper's order."""
        return {
            "scan": self.scan_seconds,
            "accumulate": self.accumulate_seconds,
            "merge": self.merge_seconds,
            "finalize": self.finalize_seconds,
        }


class StageTimer:
    """Accumulates wall-clock seconds into one stage of a metrics record.

    Not thread-safe: use it from the coordinating thread only.  Engine
    worker tasks time themselves locally and return their elapsed
    seconds for the coordinator to sum (see the executor's partition
    tasks), so no metrics record is ever written from two threads.
    """

    def __init__(self, metrics: QueryMetrics, stage: str) -> None:
        self._metrics = metrics
        self._attribute = f"{stage}_seconds"
        if not hasattr(metrics, self._attribute):
            raise AttributeError(f"QueryMetrics has no stage {stage!r}")

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(
            self._metrics,
            self._attribute,
            getattr(self._metrics, self._attribute) + elapsed,
        )
