"""Wall-clock observability for query execution.

The cost model (:mod:`repro.dbms.cost`) answers "what would this query
have cost on the paper's 2007 hardware?" — an *analytical* number.  This
module answers the orthogonal question "what did this query actually
cost *here*, in real seconds, stage by stage?", which is what the
parallel engine's speedups are measured against.

A :class:`QueryMetrics` record is attached to every
:class:`~repro.dbms.database.QueryResult`.  For aggregate queries the
executor fills the four run-time stages of Section 3.4:

* ``scan_seconds`` — materializing partition blocks / iterating rows,
* ``accumulate_seconds`` — folding rows or blocks into partial states,
* ``merge_seconds`` — combining per-partition partials in partition
  order,
* ``finalize_seconds`` — packing final values (phase 4) and projecting
  the result rows.

Under parallel execution the scan/accumulate stages overlap across
worker threads, so their per-stage seconds are *summed task time*
(comparable to CPU time), while ``total_seconds`` is the end-to-end wall
clock of the statement; ``total_seconds`` shrinking while the stage sums
stay put is exactly what a successful parallel run looks like.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dbms.trace import Span


@dataclass
class QueryMetrics:
    """Per-statement wall-clock measurements (real seconds, not simulated)."""

    #: configured worker count of the engine that ran the statement
    workers: int = 1
    #: end-to-end wall clock of executing the statement
    total_seconds: float = 0.0
    #: summed per-task time spent materializing partition blocks / rows
    scan_seconds: float = 0.0
    #: summed per-task time spent folding rows/blocks into partial states
    accumulate_seconds: float = 0.0
    #: time spent merging per-partition partials (always serial, in order)
    merge_seconds: float = 0.0
    #: time spent finalizing states and building the result rows
    finalize_seconds: float = 0.0
    #: physical rows folded into aggregate states
    rows_processed: int = 0
    #: non-empty partitions that contributed a partial state
    partitions_processed: int = 0
    #: per-partition tasks handed to the engine (aggregate fan-out or
    #: block-wise projection; 0 = neither ran)
    parallel_tasks: int = 0
    #: number of groups produced by aggregation (1 for a grand aggregate)
    groups: int = 0
    #: summed per-task time spent in block-wise WHERE + projection
    #: (vectorized SELECT path only; not one of the four paper stages)
    project_seconds: float = 0.0
    #: partition block-cache hits/misses this statement incurred.
    #: Summed from per-task local counts merged in partition order —
    #: never read from shared partition counters while workers run, so
    #: a straggler task from an earlier (timed-out) statement can never
    #: tear this statement's numbers.
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    #: engine task retries spent by this statement (idempotent tasks
    #: only; see PartitionEngine.max_retries)
    task_retries: int = 0
    #: engine task timeouts observed by this statement
    task_timeouts: int = 0
    #: vectorized→row degradations this statement performed (the block
    #: path raised at runtime and the row path re-ran the work)
    fallbacks: int = 0
    #: why the last degradation happened ("" when fallbacks == 0)
    fallback_reason: str = ""
    #: statements served from the database's summary-matrix cache
    #: (entry existed and only its watermark suffix, if anything, was
    #: re-read)
    summary_cache_hits: int = 0
    #: cache-eligible statements that had to build a fresh entry
    summary_cache_misses: int = 0
    #: full table scans this statement avoided via the summary cache
    scans_saved: int = 0
    #: physical rows read from table partitions.  Equals
    #: ``rows_processed`` except when the summary cache serves a
    #: statement (a fresh hit scans zero rows, a stale hit scans only
    #: the un-watermarked suffix) or when a join materializes: the
    #: nested-loop join re-reads every inner row per outer row, so each
    #: join step adds its |outer| + |outer| x |inner| input reads.
    rows_scanned: int = 0
    #: statements that rode a consolidated batch (``execute_batch``
    #: after the scan-consolidation rewrite proved they share a scan);
    #: 0 for every serially executed statement
    statements_batched: int = 0
    #: joins answered by the factorized path (per-base-table partial
    #: aggregates combined through the key–FK join; the joined table
    #: was never materialized)
    factorized_joins: int = 0
    #: joined-row reads the factorized path avoided: the input reads
    #: the nested-loop join would have performed minus the Σ|base
    #: tables| rows the factorized path actually scanned
    rows_join_avoided: int = 0
    #: cached numeric blocks evicted from partition block caches while
    #: this statement ran (entry-capacity or byte-budget pressure)
    cache_evictions: int = 0
    #: evicted blocks that were spilled to disk instead of discarded
    #: (a spill directory was configured, so the float block can be
    #: reloaded from its spill file via mmap instead of being rebuilt
    #: from the Python row lists)
    blocks_spilled: int = 0
    #: bytes those spilled blocks occupy on disk
    bytes_spilled: int = 0

    def to_dict(self) -> dict[str, float | int]:
        """A plain-dict snapshot; inverse of :meth:`from_dict`.

        Keys are exactly the dataclass field names, so
        ``QueryMetrics.from_dict(m.to_dict()) == m`` always holds and the
        dict is JSON-serializable as-is (bench harness output, logs).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # Backwards-compatible alias (pre-observability name).
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryMetrics":
        """Rebuild a record from :meth:`to_dict` output.

        Unknown keys are rejected (they signal a version mismatch);
        missing keys keep their field defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown QueryMetrics fields: {sorted(unknown)}")
        return cls(**dict(data))

    def __repr__(self) -> str:
        stages = ", ".join(
            f"{name}={seconds * 1e3:.3f}ms"
            for name, seconds in self.stage_seconds.items()
        )
        return (
            f"QueryMetrics(workers={self.workers}, "
            f"total={self.total_seconds * 1e3:.3f}ms, {stages}, "
            f"rows={self.rows_processed}, "
            f"partitions={self.partitions_processed}, "
            f"tasks={self.parallel_tasks}, groups={self.groups})"
        )

    @property
    def stage_seconds(self) -> dict[str, float]:
        """The four run-time stages, in the paper's order."""
        return {
            "scan": self.scan_seconds,
            "accumulate": self.accumulate_seconds,
            "merge": self.merge_seconds,
            "finalize": self.finalize_seconds,
        }


@dataclass
class DurabilityMetrics:
    """Session-level counters of a durable database's WAL and recovery.

    Where :class:`QueryMetrics` describes one statement, this record
    accumulates over a durable session's lifetime: how many commit
    records the write-ahead log took, how many bytes they cost, how
    often the log was fsynced, and — after ``open_durable`` reopened an
    existing directory — what recovery had to do.
    """

    #: commit records appended to the write-ahead log
    wal_records: int = 0
    #: serialized bytes those records occupy (header + payload)
    wal_bytes: int = 0
    #: ``fsync`` calls the WAL issued (``always`` mode pays one per
    #: commit, ``batch`` one per ``wal_batch_records``, ``off`` only at
    #: checkpoint/close)
    fsyncs: int = 0
    #: atomic checkpoints completed (manifest swapped, WAL truncated)
    checkpoints: int = 0
    #: times this directory was recovered (0 for a fresh session, 1
    #: after one ``open_durable`` of existing state)
    recoveries: int = 0
    #: WAL records replayed on top of the checkpoint during recovery
    recovery_replayed_records: int = 0
    #: stale records skipped because their LSN predates the checkpoint
    #: (a crash between manifest swap and WAL truncation leaves these)
    recovery_skipped_records: int = 0
    #: torn-tail bytes truncated from the WAL during recovery
    recovery_truncated_bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        """A plain-dict snapshot; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DurabilityMetrics":
        """Rebuild a record from :meth:`to_dict` output (unknown keys
        are rejected, missing keys keep their defaults)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown DurabilityMetrics fields: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def __repr__(self) -> str:
        return (
            f"DurabilityMetrics(wal_records={self.wal_records}, "
            f"wal_bytes={self.wal_bytes}, fsyncs={self.fsyncs}, "
            f"checkpoints={self.checkpoints}, "
            f"recoveries={self.recoveries})"
        )


class StageTimer:
    """Accumulates wall-clock seconds into one stage of a metrics record.

    Not thread-safe: use it from the coordinating thread only.  Engine
    worker tasks time themselves locally and return their elapsed
    seconds for the coordinator to sum (see the executor's partition
    tasks), so no metrics record is ever written from two threads.

    When EXPLAIN ANALYZE is tracing, the executor passes the stage's
    :class:`~repro.dbms.trace.Span` as *span*: the timer then writes the
    *same* measured float to both the metrics field and the span, which
    is what lets tests assert the span tree reconciles with the stage
    totals exactly.
    """

    def __init__(
        self,
        metrics: QueryMetrics,
        stage: str,
        span: "Span | None" = None,
    ) -> None:
        self._metrics = metrics
        self._attribute = f"{stage}_seconds"
        self._span = span
        if not hasattr(metrics, self._attribute):
            raise AttributeError(f"QueryMetrics has no stage {stage!r}")

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(
            self._metrics,
            self._attribute,
            getattr(self._metrics, self._attribute) + elapsed,
        )
        if self._span is not None:
            self._span.seconds += elapsed
