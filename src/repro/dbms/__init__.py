"""The relational DBMS substrate.

This subpackage is a from-scratch, self-contained relational engine that
plays the role Teradata V2R6 plays in the paper:

* typed schemas and a system catalog (:mod:`repro.dbms.schema`,
  :mod:`repro.dbms.catalog`),
* horizontally partitioned storage across simulated AMPs
  (:mod:`repro.dbms.storage`),
* a SQL subset — SELECT with full expressions, WHERE, GROUP BY, ORDER BY,
  joins, derived tables, CASE, views, DDL/DML (:mod:`repro.dbms.sql`),
* a scalar + aggregate UDF framework enforcing the constraints the paper
  describes for Teradata's C UDF API (:mod:`repro.dbms.udf`),
* a deterministic simulated-time cost model (:mod:`repro.dbms.cost`), and
* a parallel partition-execution engine with wall-clock observability
  (:mod:`repro.dbms.engine`, :mod:`repro.dbms.metrics`).

The :class:`~repro.dbms.database.Database` facade ties these together.
"""

from repro.dbms.cost import CostModel, SimulatedClock
from repro.dbms.database import Database, QueryResult
from repro.dbms.engine import PartitionEngine
from repro.dbms.metrics import DurabilityMetrics, QueryMetrics
from repro.dbms.schema import Column, TableSchema
from repro.dbms.types import SqlType
from repro.dbms.udf import AggregateUdf, ScalarUdf
from repro.dbms.wal import DurableDatabase, open_durable

__all__ = [
    "AggregateUdf",
    "Column",
    "CostModel",
    "Database",
    "DurabilityMetrics",
    "DurableDatabase",
    "PartitionEngine",
    "QueryMetrics",
    "QueryResult",
    "ScalarUdf",
    "SimulatedClock",
    "SqlType",
    "TableSchema",
    "open_durable",
]
