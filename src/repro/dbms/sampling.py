"""Bounded, NULL-filtered sampling through the partition engine.

Model seeding (k-means++ in particular) needs a handful of *complete*
rows, not the whole table: materializing every row client-side defeats
the paper's bring-the-computation-to-the-data discipline, and rows with
NULLs become NaN in a numeric matrix — one NaN distance poisons every
subsequent centroid assignment.

:func:`reservoir_sample` gathers a bounded sample the same way the
executor scans: one idempotent task per non-empty partition (firing the
``partition.scan`` fault site, riding the engine's retry/timeout
supervision), each keeping an Algorithm-R reservoir of its partition's
complete rows, concatenated in partition order.  Each partition's
reservoir is seeded from ``(seed, partition id)``, so the sample is a
pure function of the stored data and *seed* — bit-identical at any
worker count.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.database import Database


def reservoir_sample(
    db: "Database",
    table: str,
    columns: Sequence[str],
    cap: int = 1024,
    seed: int = 0,
) -> np.ndarray:
    """A deterministic sample of up to *cap* complete rows of *columns*.

    Rows with a NULL (or NaN) in any requested column are skipped.
    Returns a float matrix of shape ``(sample rows, len(columns))`` —
    possibly empty when no complete rows exist.
    """
    if cap < 1:
        raise ValueError(f"sample cap must be >= 1, got {cap}")
    table_obj = db.table(table)
    schema = table_obj.schema
    positions = [schema.position_of(name) for name in columns]
    numbered = [
        (index, partition)
        for index, partition in enumerate(table_obj.partitions)
        if partition.row_count
    ]
    if not numbered:
        return np.empty((0, len(positions)))
    per_partition_cap = max(1, math.ceil(cap / len(numbered)))
    executor = db._executor
    faults = executor.faults

    def make_task(pid, partition):
        def task() -> list[list[float]]:
            if faults.enabled:
                faults.fire("partition.scan", partition=pid)
            rng = np.random.default_rng([seed, pid])
            reservoir: list[list[float]] = []
            seen = 0
            for row in partition.rows():
                values = [row[position] for position in positions]
                if any(
                    value is None
                    or (isinstance(value, float) and math.isnan(value))
                    for value in values
                ):
                    continue
                seen += 1
                if len(reservoir) < per_partition_cap:
                    reservoir.append([float(value) for value in values])
                else:
                    # Algorithm R: the i-th complete row replaces a
                    # reservoir slot with probability cap/i.
                    slot = int(rng.integers(seen))
                    if slot < per_partition_cap:
                        reservoir[slot] = [float(value) for value in values]
            return reservoir

        return task

    tasks = [make_task(pid, partition) for pid, partition in numbered]
    partition_ids = [pid for pid, _ in numbered]
    reservoirs = executor.engine.map(
        tasks, idempotent=True, partition_ids=partition_ids
    )
    rows = [row for reservoir in reservoirs for row in reservoir]
    if not rows:
        return np.empty((0, len(positions)))
    return np.asarray(rows, dtype=float)[:cap]
