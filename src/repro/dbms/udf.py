"""The user-defined function framework.

Models the Teradata C UDF API the paper builds on, including its
constraints (Section 2.2), which are enforced rather than merely
documented because they are what drive the paper's design choices:

* **Simple-typed parameters only** — numbers and strings, never arrays.
  This is why the nLQ UDF has a string-packing variant and a list-of-
  scalars variant.
* **Single simple-typed return value** — an aggregate returns one value,
  so the (n, L, Q) result is packed into one long string.
* **Bounded heap** — aggregate state lives in one 64 KB segment;
  :meth:`AggregateUdf.ensure_state_fits` raises once the state (sized in
  8-byte values) outgrows it.  This is why ``MAX_d`` exists and why very
  high ``d`` must be block-partitioned across calls (Table 6).
* **No nested UDF calls** — a UDF body cannot invoke another UDF.
* **No I/O** — UDF bodies get no handle to the catalog or storage.

Aggregates follow the paper's four run-time stages: (1) initialization
per worker, (2) per-row accumulation, (3) partial-result merge across
workers, (4) packing the returned value.  The executor drives one state
per partition (AMP) and merges, exactly as Section 3.4 describes.

**Thread-safety contract.**  The partition-execution engine
(:mod:`repro.dbms.engine`) may call :meth:`AggregateUdf.initialize` /
``accumulate`` / ``accumulate_block`` concurrently from worker threads,
one *state* per partition.  The contract mirrors the C API the paper
describes (each AMP owns its scratch segment):

* accumulation must only mutate the state object passed in — never
  shared attributes of the UDF instance (last-writer-wins hints like a
  cached observed dimensionality are tolerable only because every
  partition writes the same value within one scan);
* ``merge`` and ``finalize`` are always invoked from the coordinating
  thread, in deterministic partition order;
* the nested-call guard below is a ``threading.local``, so a scalar UDF
  running inside one worker thread never trips the guard for another.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.dbms.types import VALUE_WIDTH_BYTES
from repro.errors import UdfArgumentError, UdfMemoryError, UdfRegistrationError

#: the one heap segment available to an aggregate UDF (paper: 64 kb)
HEAP_SEGMENT_BYTES = 65536

_SIMPLE_TYPES = (int, float, str, bool)

_in_udf_call = threading.local()


def _check_simple(value: Any, udf_name: str) -> None:
    if value is None or isinstance(value, _SIMPLE_TYPES):
        return
    if isinstance(value, np.generic):
        return
    raise UdfArgumentError(
        f"UDF {udf_name!r} received a {type(value).__name__} argument; "
        "UDF parameters can only be simple types (numbers or strings), "
        "never arrays"
    )


class _NestedCallGuard:
    """Context manager enforcing 'UDFs cannot internally call other UDFs'.

    The active-call flag lives in a ``threading.local`` so concurrent
    engine workers each track their own call stack; a UDF executing on
    one thread cannot spuriously flag a UDF on another as nested.
    """

    def __init__(self, udf_name: str) -> None:
        self._udf_name = udf_name

    def __enter__(self) -> None:
        if getattr(_in_udf_call, "active", None):
            raise UdfArgumentError(
                f"UDF {self._udf_name!r} invoked from inside UDF "
                f"{_in_udf_call.active!r}; UDFs cannot call other UDFs"
            )
        _in_udf_call.active = self._udf_name

    def __exit__(self, *exc: object) -> None:
        _in_udf_call.active = None


@dataclass(frozen=True)
class RowCost:
    """Per-row cost profile of one UDF invocation.

    The executor multiplies this by the (nominal) row count and hands it
    to :meth:`repro.dbms.cost.CostModel.charge_udf_rows`.
    """

    list_params: int = 0
    string_chars: float = 0.0
    arith_ops: float = 0.0


class ScalarUdf:
    """A scalar UDF: one value in per row, one value out per row.

    Subclass and override :meth:`compute`, or wrap a plain function with
    :func:`scalar_udf`.

    A subclass may additionally implement :meth:`compute_batch` and set
    ``supports_batch = True`` to let the block-wise SELECT path (see
    :mod:`repro.dbms.sql.vectorized`) evaluate the UDF over whole
    partition blocks at once — a pure execution fast path that must
    return exactly the values :meth:`compute` would produce row by row
    (parity tests enforce this, bit for bit).
    """

    #: set true in subclasses that implement :meth:`compute_batch`
    supports_batch = False
    #: batch results are 1-based subscripts (argmin/argmax scores); the
    #: executor restores them to Python ints per row, as the row path
    #: returns them
    batch_integer_result = False

    def __init__(self, name: str, arity: int | None = None) -> None:
        if not name:
            raise UdfRegistrationError("scalar UDF needs a name")
        self.name = name.lower()
        self.arity = arity

    def compute(self, *args: Any) -> Any:
        raise NotImplementedError

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        """Optional vectorized :meth:`compute` over an argument block.

        *args* is a ``(rows, arg_count)`` float matrix with NaN carrying
        NULL; the result is one float per row, NaN where the row's
        result is NULL.  NULL-in → NULL-out must hold per row (any NaN
        argument makes that row's result NaN), and argument-count
        validation must raise the same :class:`UdfArgumentError` the row
        path raises — the executor relies on both paths failing alike.
        """
        raise NotImplementedError

    def __call__(self, *args: Any) -> Any:
        if self.arity is not None and len(args) != self.arity:
            raise UdfArgumentError(
                f"UDF {self.name!r} expects {self.arity} arguments, "
                f"got {len(args)}"
            )
        for value in args:
            _check_simple(value, self.name)
        with _NestedCallGuard(self.name):
            result = self.compute(*args)
        _check_simple(result, self.name)
        return result

    def cost_per_row(self, arg_count: int) -> RowCost:
        """Default costing: per-call overhead plus one transfer per arg."""
        return RowCost(list_params=arg_count)


class _FunctionScalarUdf(ScalarUdf):
    def __init__(
        self, name: str, function: Callable[..., Any], arity: int | None
    ) -> None:
        super().__init__(name, arity)
        self._function = function

    def compute(self, *args: Any) -> Any:
        return self._function(*args)


def scalar_udf(
    name: str, function: Callable[..., Any], arity: int | None = None
) -> ScalarUdf:
    """Wrap a plain Python function as a scalar UDF."""
    return _FunctionScalarUdf(name, function, arity)


class AggregateUdf:
    """An aggregate UDF following the paper's four-phase protocol.

    Subclasses override :meth:`initialize`, :meth:`accumulate`,
    :meth:`merge` and :meth:`finalize`.  A subclass may also implement
    :meth:`accumulate_block` and set ``supports_block = True`` to receive
    whole numpy column blocks when every argument is a plain column
    reference — a pure execution fast path that must produce state
    identical to per-row accumulation (tests enforce this).
    """

    #: set true in subclasses that implement accumulate_block
    supports_block = False
    #: number of SQL arguments (None = variadic)
    arity: int | None = None
    #: aggregate UDFs skip rows where any argument is NULL unless told not to
    skips_nulls = True

    def __init__(self, name: str) -> None:
        if not name:
            raise UdfRegistrationError("aggregate UDF needs a name")
        self.name = name.lower()

    # ------------------------------------------------------------- the phases
    def initialize(self) -> Any:
        """Phase 1: allocate per-worker state (must fit the heap segment)."""
        raise NotImplementedError

    def accumulate(self, state: Any, args: Sequence[Any]) -> Any:
        """Phase 2: fold one row's arguments into the state."""
        raise NotImplementedError

    def merge(self, state: Any, other: Any) -> Any:
        """Phase 3: combine another worker's partial state into this one."""
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        """Phase 4: pack the state into a single simple-typed value."""
        raise NotImplementedError

    def accumulate_block(self, state: Any, block: np.ndarray) -> Any:
        """Optional vectorized phase 2 over a (rows × args) block."""
        raise NotImplementedError

    # ---------------------------------------------------------------- costing
    def cost_per_row(self, arg_count: int) -> RowCost:
        return RowCost(list_params=arg_count)

    def state_value_count(self) -> int:
        """Number of 8-byte values in the state (for merge/return costs)."""
        return 1

    # ------------------------------------------------------------ constraints
    def ensure_state_fits(self, value_count: int) -> None:
        """Raise :class:`UdfMemoryError` if *value_count* 8-byte values
        exceed the 64 KB heap segment."""
        needed = value_count * VALUE_WIDTH_BYTES
        if needed > HEAP_SEGMENT_BYTES:
            raise UdfMemoryError(
                f"aggregate UDF {self.name!r} needs {needed} bytes of state "
                f"but only one {HEAP_SEGMENT_BYTES}-byte heap segment is "
                "available; partition the computation (see Table 6 of the "
                "paper and repro.core.blockwise)"
            )

    def check_args(self, args: Sequence[Any]) -> None:
        if self.arity is not None and len(args) != self.arity:
            raise UdfArgumentError(
                f"aggregate UDF {self.name!r} expects {self.arity} "
                f"arguments, got {len(args)}"
            )
        for value in args:
            _check_simple(value, self.name)
