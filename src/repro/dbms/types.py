"""SQL data types and value coercion.

The engine supports the small set of types the paper's workload needs:
integers, double-precision floats, and variable-length strings.  NULL is
represented by Python ``None`` and follows SQL three-valued logic in the
expression evaluator (see :mod:`repro.dbms.expressions`).
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import TypeMismatchError


class SqlType(enum.Enum):
    """The SQL types understood by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Resolve a type name as written in DDL (case-insensitive).

        Accepts the common aliases a user would write: ``INT``,
        ``BIGINT``, ``DOUBLE``, ``DOUBLE PRECISION``, ``REAL``,
        ``NUMERIC``, ``TEXT``, ``CHAR``.
        """
        normalized = " ".join(name.upper().split())
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "DOUBLE PRECISION": cls.FLOAT,
            "REAL": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "VARCHAR": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "STRING": cls.VARCHAR,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown SQL type: {name!r}")
        return aliases[normalized]

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.FLOAT)


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce a Python value to the storage representation of *sql_type*.

    ``None`` always passes through (SQL NULL is type-agnostic).  Numeric
    coercion is strict about strings: inserting ``"abc"`` into a FLOAT
    column raises :class:`TypeMismatchError` rather than storing garbage.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if math.isnan(value) or math.isinf(value):
                raise TypeMismatchError(f"cannot store {value!r} in INTEGER")
            if not value.is_integer():
                raise TypeMismatchError(
                    f"cannot store non-integral {value!r} in INTEGER"
                )
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot coerce {value!r} to INTEGER"
                ) from exc
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to INTEGER")
    if sql_type is SqlType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot coerce {value!r} to FLOAT"
                ) from exc
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to FLOAT")
    if sql_type is SqlType.VARCHAR:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float)):
            return repr(value)
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to VARCHAR")
    raise TypeMismatchError(f"unhandled SQL type {sql_type}")


def infer_type(value: Any) -> SqlType:
    """Infer the SQL type of a Python literal (used for derived columns)."""
    if isinstance(value, bool):
        return SqlType.INTEGER
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.VARCHAR
    if value is None:
        return SqlType.FLOAT
    raise TypeMismatchError(f"cannot infer SQL type for {type(value).__name__}")


def common_numeric_type(left: SqlType, right: SqlType) -> SqlType:
    """The result type of an arithmetic operation on *left* and *right*."""
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(
            f"arithmetic requires numeric operands, got {left.value} and {right.value}"
        )
    if SqlType.FLOAT in (left, right):
        return SqlType.FLOAT
    return SqlType.INTEGER


VALUE_WIDTH_BYTES = 8
"""Storage width of one numeric value.

Both INTEGER and FLOAT are stored as 8-byte machine words, matching the
double-precision arithmetic the paper's UDF struct uses.  The cost model
and the 64 KB aggregate-heap check both measure state in these units.
"""
