"""Expression evaluation: row-at-a-time compilation and a vectorized path.

The planner binds every :class:`~repro.dbms.sql.ast.ColumnRef` to a
position in the executor's row tuples and then calls
:func:`compile_row_expression`, which turns the AST into a nest of Python
closures — evaluated once per row with no per-row dispatch on node types.

:func:`compile_vector_expression` additionally compiles *numeric*
expressions (literals, column refs, arithmetic, a few math functions)
into numpy-array functions.  The executor uses it as a fast path for
aggregate arguments over full scans; any expression it cannot handle
falls back to the row path, so semantics never change — NULLs are
carried as NaN and restored afterwards.

SQL three-valued logic: NULL propagates through arithmetic and
comparisons; AND/OR follow Kleene logic; WHERE treats unknown as false
(the executor's responsibility).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.dbms.functions import SCALAR_BUILTINS, VECTORIZABLE_SCALARS
from repro.dbms.sql import ast
from repro.errors import ExecutionError, PlanningError

RowFunction = Callable[[tuple], Any]
ColumnResolver = Callable[[ast.ColumnRef], int]
ScalarRegistry = Callable[[str], Callable[..., Any] | None]


def builtin_scalar_registry(name: str) -> Callable[..., Any] | None:
    """Resolver over the builtin scalar functions only (no UDFs)."""
    return SCALAR_BUILTINS.get(name)


# ------------------------------------------------------------------ row path
def compile_row_expression(
    expression: ast.Expression,
    resolver: ColumnResolver,
    scalar_registry: ScalarRegistry = builtin_scalar_registry,
) -> RowFunction:
    """Compile *expression* to a function of one row tuple."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda row: value

    if isinstance(expression, ast.ColumnRef):
        position = resolver(expression)
        return lambda row: row[position]

    if isinstance(expression, ast.Unary):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        if expression.op == "-":
            return lambda row: _negate(operand(row))
        if expression.op == "NOT":
            return lambda row: _not(operand(row))
        raise PlanningError(f"unknown unary operator {expression.op!r}")

    if isinstance(expression, ast.Binary):
        left = compile_row_expression(expression.left, resolver, scalar_registry)
        right = compile_row_expression(expression.right, resolver, scalar_registry)
        return _compile_binary(expression.op, left, right)

    if isinstance(expression, ast.Case):
        compiled_whens = [
            (
                compile_row_expression(cond, resolver, scalar_registry),
                compile_row_expression(result, resolver, scalar_registry),
            )
            for cond, result in expression.whens
        ]
        compiled_else = (
            compile_row_expression(expression.else_result, resolver, scalar_registry)
            if expression.else_result is not None
            else None
        )

        def case(row: tuple) -> Any:
            for condition, result in compiled_whens:
                if condition(row) is True:
                    return result(row)
            return compiled_else(row) if compiled_else is not None else None

        return case

    if isinstance(expression, ast.IsNull):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        if expression.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expression, ast.InList):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        items = [
            compile_row_expression(item, resolver, scalar_registry)
            for item in expression.items
        ]
        negated = expression.negated

        def in_list(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list

    if isinstance(expression, ast.FuncCall):
        function = scalar_registry(expression.name)
        if function is None:
            raise PlanningError(f"unknown function {expression.name!r}")
        args = [
            compile_row_expression(arg, resolver, scalar_registry)
            for arg in expression.args
        ]
        if len(args) == 1:
            only = args[0]
            return lambda row: function(only(row))
        if len(args) == 2:
            first, second = args
            return lambda row: function(first(row), second(row))
        return lambda row: function(*(arg(row) for arg in args))

    if isinstance(expression, ast.Star):
        raise PlanningError("'*' is only valid in a select list or COUNT(*)")

    raise PlanningError(f"cannot compile {type(expression).__name__}")


def _negate(value: Any) -> Any:
    return None if value is None else -value


def _not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _compile_binary(op: str, left: RowFunction, right: RowFunction) -> RowFunction:
    if op == "+":
        return lambda row: _arith(left(row), right(row), _add)
    if op == "-":
        return lambda row: _arith(left(row), right(row), _sub)
    if op == "*":
        return lambda row: _arith(left(row), right(row), _mul)
    if op == "/":
        return lambda row: _divide(left(row), right(row))
    if op == "MOD":
        return lambda row: _modulo(left(row), right(row))
    if op == "=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a == b)
    if op == "<>":
        return lambda row: _compare(left(row), right(row), lambda a, b: a != b)
    if op == "<":
        return lambda row: _compare(left(row), right(row), lambda a, b: a < b)
    if op == "<=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a <= b)
    if op == ">":
        return lambda row: _compare(left(row), right(row), lambda a, b: a > b)
    if op == ">=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a >= b)
    if op == "AND":
        return lambda row: _kleene_and(left(row), right(row))
    if op == "OR":
        return lambda row: _kleene_or(left(row), right(row))
    raise PlanningError(f"unknown binary operator {op!r}")


def _add(a: Any, b: Any) -> Any:
    return a + b


def _sub(a: Any, b: Any) -> Any:
    return a - b


def _mul(a: Any, b: Any) -> Any:
    return a * b


def _arith(a: Any, b: Any, op: Callable[[Any, Any], Any]) -> Any:
    if a is None or b is None:
        return None
    try:
        return op(a, b)
    except TypeError as exc:
        raise ExecutionError(f"type error in arithmetic: {exc}") from exc


def _divide(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b


def _modulo(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("MOD by zero")
    result = np.fmod(a, b)
    if isinstance(a, int) and isinstance(b, int):
        return int(result)
    return float(result)


def _compare(a: Any, b: Any, op: Callable[[Any, Any], bool]) -> Any:
    if a is None or b is None:
        return None
    try:
        return op(a, b)
    except TypeError as exc:
        raise ExecutionError(f"type error in comparison: {exc}") from exc


def _kleene_and(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _kleene_or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


# --------------------------------------------------------------- vector path
VectorFunction = Callable[[np.ndarray], np.ndarray]

_VECTOR_MATH: dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "power": np.power,
}


def referenced_columns(expression: ast.Expression) -> list[ast.ColumnRef]:
    """All column references in *expression*, in first-appearance order."""
    refs: list[ast.ColumnRef] = []
    seen: set[tuple[str | None, str]] = set()
    for node in ast.walk(expression):
        if isinstance(node, ast.ColumnRef):
            key = (node.table, node.name.lower())
            if key not in seen:
                seen.add(key)
                refs.append(node)
    return refs


def compile_vector_expression(
    expression: ast.Expression,
    resolver: ColumnResolver,
) -> VectorFunction | None:
    """Compile a numeric expression over a column-block matrix.

    The returned function takes a ``(rows, columns)`` float matrix whose
    columns are indexed by *resolver* and returns one value per row.
    Returns ``None`` when the expression uses features the vector path
    does not support (CASE, UDFs, strings, NULL-sensitive logic) — the
    caller must then use the row path.
    """
    if isinstance(expression, ast.Literal):
        if expression.value is None:
            return lambda block: np.full(block.shape[0], np.nan)
        if isinstance(expression.value, (int, float)) and not isinstance(
            expression.value, bool
        ):
            value = float(expression.value)
            return lambda block: np.full(block.shape[0], value)
        return None

    if isinstance(expression, ast.ColumnRef):
        try:
            position = resolver(expression)
        except Exception:
            return None
        return lambda block: block[:, position]

    if isinstance(expression, ast.Unary) and expression.op == "-":
        operand = compile_vector_expression(expression.operand, resolver)
        if operand is None:
            return None
        return lambda block: -operand(block)

    if isinstance(expression, ast.Binary) and expression.op in ("+", "-", "*", "/", "MOD"):
        left = compile_vector_expression(expression.left, resolver)
        right = compile_vector_expression(expression.right, resolver)
        if left is None or right is None:
            return None
        op = expression.op
        if op == "MOD":

            def modulo(block: np.ndarray) -> np.ndarray:
                denominator = right(block)
                if np.any(denominator == 0):
                    raise ExecutionError("MOD by zero")
                return np.fmod(left(block), denominator)

            return modulo
        if op == "+":
            return lambda block: left(block) + right(block)
        if op == "-":
            return lambda block: left(block) - right(block)
        if op == "*":
            return lambda block: left(block) * right(block)

        def divide(block: np.ndarray) -> np.ndarray:
            denominator = right(block)
            if np.any(denominator == 0):
                raise ExecutionError("division by zero")
            return left(block) / denominator

        return divide

    if isinstance(expression, ast.FuncCall) and expression.name in VECTORIZABLE_SCALARS:
        compiled = [
            compile_vector_expression(arg, resolver) for arg in expression.args
        ]
        if any(arg is None for arg in compiled):
            return None
        math_fn = _VECTOR_MATH[expression.name]
        args: Sequence[VectorFunction] = compiled  # type: ignore[assignment]
        return lambda block: math_fn(*(arg(block) for arg in args))

    return None
