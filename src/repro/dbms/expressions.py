"""Expression evaluation: row-at-a-time compilation and a vectorized path.

The planner binds every :class:`~repro.dbms.sql.ast.ColumnRef` to a
position in the executor's row tuples and then calls
:func:`compile_row_expression`, which turns the AST into a nest of Python
closures — evaluated once per row with no per-row dispatch on node types.

:func:`compile_vector_expression` additionally compiles *numeric*
expressions (literals, column refs, arithmetic, a few math functions)
into numpy-array functions.  The executor uses it as a fast path for
aggregate arguments over full scans and for block-wise SELECT
evaluation (see :mod:`repro.dbms.sql.vectorized`); any expression it
cannot handle falls back to the row path, so semantics never change —
NULLs are carried as NaN and restored afterwards.  An optional
*call_compiler* hook lets the caller vectorize function calls the
generic compiler does not know (batched scalar UDFs).

:func:`compile_vector_predicate` compiles WHERE predicates to
three-valued truth *vectors*: 1.0 true, 0.0 false, 0.5 unknown.
Kleene logic then becomes elementwise arithmetic — AND is ``minimum``,
OR is ``maximum``, NOT is ``1 − x`` — which reproduces the row path's
NULL semantics exactly (NOT NULL stays unknown, FALSE AND NULL is
false, ...).  The executor keeps the rows whose truth value is exactly
1.0, matching the row path's ``predicate(row) is True``.

SQL three-valued logic: NULL propagates through arithmetic and
comparisons; AND/OR follow Kleene logic; WHERE treats unknown as false
(the executor's responsibility).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.dbms.functions import SCALAR_BUILTINS, VECTORIZABLE_SCALARS
from repro.dbms.sql import ast
from repro.errors import ExecutionError, PlanningError

RowFunction = Callable[[tuple], Any]
ColumnResolver = Callable[[ast.ColumnRef], int]
ScalarRegistry = Callable[[str], Callable[..., Any] | None]


def builtin_scalar_registry(name: str) -> Callable[..., Any] | None:
    """Resolver over the builtin scalar functions only (no UDFs)."""
    return SCALAR_BUILTINS.get(name)


# ------------------------------------------------------------------ row path
def compile_row_expression(
    expression: ast.Expression,
    resolver: ColumnResolver,
    scalar_registry: ScalarRegistry = builtin_scalar_registry,
) -> RowFunction:
    """Compile *expression* to a function of one row tuple."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda row: value

    if isinstance(expression, ast.ColumnRef):
        position = resolver(expression)
        return lambda row: row[position]

    if isinstance(expression, ast.Unary):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        if expression.op == "-":
            return lambda row: _negate(operand(row))
        if expression.op == "NOT":
            return lambda row: _not(operand(row))
        raise PlanningError(f"unknown unary operator {expression.op!r}")

    if isinstance(expression, ast.Binary):
        left = compile_row_expression(expression.left, resolver, scalar_registry)
        right = compile_row_expression(expression.right, resolver, scalar_registry)
        return _compile_binary(expression.op, left, right)

    if isinstance(expression, ast.Case):
        compiled_whens = [
            (
                compile_row_expression(cond, resolver, scalar_registry),
                compile_row_expression(result, resolver, scalar_registry),
            )
            for cond, result in expression.whens
        ]
        compiled_else = (
            compile_row_expression(expression.else_result, resolver, scalar_registry)
            if expression.else_result is not None
            else None
        )

        def case(row: tuple) -> Any:
            for condition, result in compiled_whens:
                if condition(row) is True:
                    return result(row)
            return compiled_else(row) if compiled_else is not None else None

        return case

    if isinstance(expression, ast.IsNull):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        if expression.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expression, ast.InList):
        operand = compile_row_expression(
            expression.operand, resolver, scalar_registry
        )
        items = [
            compile_row_expression(item, resolver, scalar_registry)
            for item in expression.items
        ]
        negated = expression.negated

        def in_list(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list

    if isinstance(expression, ast.FuncCall):
        function = scalar_registry(expression.name)
        if function is None:
            raise PlanningError(f"unknown function {expression.name!r}")
        args = [
            compile_row_expression(arg, resolver, scalar_registry)
            for arg in expression.args
        ]
        if len(args) == 1:
            only = args[0]
            return lambda row: function(only(row))
        if len(args) == 2:
            first, second = args
            return lambda row: function(first(row), second(row))
        return lambda row: function(*(arg(row) for arg in args))

    if isinstance(expression, ast.Star):
        raise PlanningError("'*' is only valid in a select list or COUNT(*)")

    raise PlanningError(f"cannot compile {type(expression).__name__}")


def _negate(value: Any) -> Any:
    return None if value is None else -value


def _not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _compile_binary(op: str, left: RowFunction, right: RowFunction) -> RowFunction:
    if op == "+":
        return lambda row: _arith(left(row), right(row), _add)
    if op == "-":
        return lambda row: _arith(left(row), right(row), _sub)
    if op == "*":
        return lambda row: _arith(left(row), right(row), _mul)
    if op == "/":
        return lambda row: _divide(left(row), right(row))
    if op == "MOD":
        return lambda row: _modulo(left(row), right(row))
    if op == "=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a == b)
    if op == "<>":
        return lambda row: _compare(left(row), right(row), lambda a, b: a != b)
    if op == "<":
        return lambda row: _compare(left(row), right(row), lambda a, b: a < b)
    if op == "<=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a <= b)
    if op == ">":
        return lambda row: _compare(left(row), right(row), lambda a, b: a > b)
    if op == ">=":
        return lambda row: _compare(left(row), right(row), lambda a, b: a >= b)
    if op == "AND":
        return lambda row: _kleene_and(left(row), right(row))
    if op == "OR":
        return lambda row: _kleene_or(left(row), right(row))
    raise PlanningError(f"unknown binary operator {op!r}")


def _add(a: Any, b: Any) -> Any:
    return a + b


def _sub(a: Any, b: Any) -> Any:
    return a - b


def _mul(a: Any, b: Any) -> Any:
    return a * b


def _arith(a: Any, b: Any, op: Callable[[Any, Any], Any]) -> Any:
    if a is None or b is None:
        return None
    try:
        return op(a, b)
    except TypeError as exc:
        raise ExecutionError(f"type error in arithmetic: {exc}") from exc


def _divide(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b


def _modulo(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("MOD by zero")
    result = np.fmod(a, b)
    if isinstance(a, int) and isinstance(b, int):
        return int(result)
    return float(result)


def _compare(a: Any, b: Any, op: Callable[[Any, Any], bool]) -> Any:
    if a is None or b is None:
        return None
    try:
        return op(a, b)
    except TypeError as exc:
        raise ExecutionError(f"type error in comparison: {exc}") from exc


def _kleene_and(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _kleene_or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


# --------------------------------------------------------------- vector path
VectorFunction = Callable[[np.ndarray], np.ndarray]
CallCompiler = Callable[[ast.FuncCall], "VectorFunction | None"]


def _vector_sqrt(values: np.ndarray) -> np.ndarray:
    # The row path raises for negative inputs (NULLs propagate as NaN,
    # and NaN < 0 is False, so they never trip the check).
    bad = values < 0
    if bad.any():
        raise ExecutionError(
            f"sqrt of negative value {float(values[bad][0])}"
        )
    return np.sqrt(values)


def _vector_ln(values: np.ndarray) -> np.ndarray:
    bad = values <= 0
    if bad.any():
        raise ExecutionError(
            f"ln of non-positive value {float(values[bad][0])}"
        )
    return np.log(values)


_VECTOR_MATH: dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "sqrt": _vector_sqrt,
    "exp": np.exp,
    "ln": _vector_ln,
    "log": _vector_ln,
    "power": np.power,
}


def referenced_columns(expression: ast.Expression) -> list[ast.ColumnRef]:
    """All column references in *expression*, in first-appearance order."""
    refs: list[ast.ColumnRef] = []
    seen: set[tuple[str | None, str]] = set()
    for node in ast.walk(expression):
        if isinstance(node, ast.ColumnRef):
            key = (node.table, node.name.lower())
            if key not in seen:
                seen.add(key)
                refs.append(node)
    return refs


def referenced_columns_of_all(
    expressions: Sequence[ast.Expression],
) -> list[ast.ColumnRef]:
    """Distinct column references across *expressions*, in order."""
    refs: list[ast.ColumnRef] = []
    seen: set[tuple[str | None, str]] = set()
    for expression in expressions:
        for ref in referenced_columns(expression):
            key = (ref.table, ref.name.lower())
            if key not in seen:
                seen.add(key)
                refs.append(ref)
    return refs


def compile_vector_expression(
    expression: ast.Expression,
    resolver: ColumnResolver,
    call_compiler: CallCompiler | None = None,
) -> VectorFunction | None:
    """Compile a numeric expression over a column-block matrix.

    The returned function takes a ``(rows, columns)`` float matrix whose
    columns are indexed by *resolver* and returns one value per row.
    Returns ``None`` when the expression uses features the vector path
    does not support (CASE, UDFs, strings, NULL-sensitive logic) — the
    caller must then use the row path.

    *call_compiler*, when given, is consulted first for every
    :class:`~repro.dbms.sql.ast.FuncCall`: it may return a block
    function for calls the generic compiler cannot handle (batched
    scalar UDFs) or ``None`` to fall through to the builtin math table.
    """
    if isinstance(expression, ast.Literal):
        if expression.value is None:
            return lambda block: np.full(block.shape[0], np.nan)
        if isinstance(expression.value, (int, float)) and not isinstance(
            expression.value, bool
        ):
            value = float(expression.value)
            return lambda block: np.full(block.shape[0], value)
        return None

    if isinstance(expression, ast.ColumnRef):
        try:
            position = resolver(expression)
        except Exception:
            return None
        return lambda block: block[:, position]

    if isinstance(expression, ast.Unary) and expression.op == "-":
        operand = compile_vector_expression(
            expression.operand, resolver, call_compiler
        )
        if operand is None:
            return None
        return lambda block: -operand(block)

    if isinstance(expression, ast.Binary) and expression.op in ("+", "-", "*", "/", "MOD"):
        left = compile_vector_expression(expression.left, resolver, call_compiler)
        right = compile_vector_expression(expression.right, resolver, call_compiler)
        if left is None or right is None:
            return None
        op = expression.op
        if op == "MOD":

            def modulo(block: np.ndarray) -> np.ndarray:
                denominator = right(block)
                if np.any(denominator == 0):
                    raise ExecutionError("MOD by zero")
                return np.fmod(left(block), denominator)

            return modulo
        if op == "+":
            return lambda block: left(block) + right(block)
        if op == "-":
            return lambda block: left(block) - right(block)
        if op == "*":
            return lambda block: left(block) * right(block)

        def divide(block: np.ndarray) -> np.ndarray:
            denominator = right(block)
            if np.any(denominator == 0):
                raise ExecutionError("division by zero")
            return left(block) / denominator

        return divide

    if isinstance(expression, ast.FuncCall):
        if call_compiler is not None:
            compiled_call = call_compiler(expression)
            if compiled_call is not None:
                return compiled_call
        if expression.name not in VECTORIZABLE_SCALARS:
            return None
        compiled = [
            compile_vector_expression(arg, resolver, call_compiler)
            for arg in expression.args
        ]
        if any(arg is None for arg in compiled):
            return None
        math_fn = _VECTOR_MATH[expression.name]
        args: Sequence[VectorFunction] = compiled  # type: ignore[assignment]
        return lambda block: math_fn(*(arg(block) for arg in args))

    return None


# ---------------------------------------------------- vector predicates (3VL)
_VECTOR_COMPARISONS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def compile_vector_predicate(
    expression: ast.Expression,
    resolver: ColumnResolver,
    call_compiler: CallCompiler | None = None,
) -> VectorFunction | None:
    """Compile a WHERE predicate to a three-valued truth vector.

    Truth values are encoded as floats — 0.0 false, 0.5 unknown (NULL),
    1.0 true — so Kleene connectives are elementwise ``minimum`` /
    ``maximum`` / ``1 − x``: exactly min/max/negation over the ordering
    F < U < T, the standard arithmetization of three-valued logic.
    Comparisons with a NaN (NULL) operand yield 0.5.  Returns ``None``
    for anything outside {comparisons, AND, OR, NOT, IS [NOT] NULL over
    numeric vector expressions}; the caller then uses the row path.
    """
    if isinstance(expression, ast.Binary):
        op = expression.op
        compare = _VECTOR_COMPARISONS.get(op)
        if compare is not None:
            left = compile_vector_expression(
                expression.left, resolver, call_compiler
            )
            right = compile_vector_expression(
                expression.right, resolver, call_compiler
            )
            if left is None or right is None:
                return None

            def comparison(block: np.ndarray) -> np.ndarray:
                a = left(block)
                b = right(block)
                truth = compare(a, b).astype(float)
                unknown = np.isnan(a) | np.isnan(b)
                if unknown.any():
                    truth[unknown] = 0.5
                return truth

            return comparison
        if op in ("AND", "OR"):
            left_tv = compile_vector_predicate(
                expression.left, resolver, call_compiler
            )
            right_tv = compile_vector_predicate(
                expression.right, resolver, call_compiler
            )
            if left_tv is None or right_tv is None:
                return None
            combine = np.minimum if op == "AND" else np.maximum
            return lambda block: combine(left_tv(block), right_tv(block))
        return None

    if isinstance(expression, ast.Unary) and expression.op == "NOT":
        operand_tv = compile_vector_predicate(
            expression.operand, resolver, call_compiler
        )
        if operand_tv is None:
            return None
        return lambda block: 1.0 - operand_tv(block)

    if isinstance(expression, ast.IsNull):
        operand = compile_vector_expression(
            expression.operand, resolver, call_compiler
        )
        if operand is None:
            return None
        if expression.negated:
            return lambda block: (~np.isnan(operand(block))).astype(float)
        return lambda block: np.isnan(operand(block)).astype(float)

    return None
