"""The Database facade: the user-visible entry point to the substrate.

A :class:`Database` owns a catalog, a cost model with its simulated
clock, and an executor.  ``execute()`` takes SQL text and returns a
:class:`QueryResult` carrying both the rows and the simulated seconds
the statement cost — the number every benchmark in this reproduction
reports.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.dbms.catalog import Catalog
from repro.dbms.columnar import ColumnarStore
from repro.dbms.cost import CostModel, CostParameters
from repro.dbms.engine import PartitionEngine
from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.metrics import QueryMetrics
from repro.dbms.schema import TableSchema
from repro.dbms.sql.executor import Executor, Relation
from repro.dbms.sql.parser import parse_statements
from repro.dbms.sql.plan import Plan
from repro.dbms.storage import BLOCK_CACHE_CAPACITY, BlockCacheConfig, Table
from repro.dbms.udf import AggregateUdf, ScalarUdf


@dataclass
class QueryResult:
    """Rows plus metadata from one executed statement.

    ``simulated_seconds`` is the analytical cost-model charge (the
    paper's 2007 hardware); ``metrics`` is the real wall-clock record of
    the same execution — per-stage timings, rows and partitions
    processed, worker count.  For a multi-statement script, ``metrics``
    describes the last statement.

    ``plan`` is filled only by ``EXPLAIN [ANALYZE]`` statements: the
    structured operator tree (with cost estimates, optimizer decisions
    and — for ANALYZE — the measured span tree) whose rendered text the
    result rows carry.  Benchmarks assert on plan *shape* through it,
    e.g. ``len(result.plan.scans) == 1``.
    """

    columns: list[str]
    rows: list[tuple]
    simulated_seconds: float
    metrics: QueryMetrics | None = None
    plan: Plan | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1×1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def first(self) -> tuple:
        if not self.rows:
            raise ValueError("result has no rows")
        return self.rows[0]

    def column(self, name: str) -> list[Any]:
        lowered = [c.lower() for c in self.columns]
        try:
            position = lowered.index(name.lower())
        except ValueError:
            raise KeyError(f"no column {name!r} in result") from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Database:
    """An in-process relational database with simulated-time accounting.

    Parameters
    ----------
    amps:
        Number of simulated parallel workers (horizontal partitions per
        table) the *cost model* divides work across; the paper's server
        used 20.
    cost_parameters:
        Charging constants; defaults are calibrated to the paper.
    executor_workers:
        Real OS threads the execution engine uses to run per-partition
        aggregation and block-wise projection concurrently.  The default
        of 1 executes serially and bit-identically to the seed engine;
        any value produces the same query results (partials always merge
        in partition order) — only the wall clock changes.
    vectorized_select:
        Whether eligible single-table SELECTs run block-wise (see
        :mod:`repro.dbms.sql.vectorized`); True by default.  Turning it
        off forces the reference row path — parity tests and the
        row-vs-vector benchmark flip this toggle.
    faults:
        A :class:`~repro.dbms.faults.FaultPlan` to inject failures,
        delays, and flaky behaviour at the engine's fault sites (see
        ``docs/fault_tolerance.md``).  The default ``None`` installs the
        no-op plan, which costs one attribute check on the hot path.
    task_timeout_seconds:
        Per-task wall-clock budget for parallel partition tasks; a task
        exceeding it fails the statement with
        :class:`~repro.errors.PartitionTimeoutError` attribution.
        ``None`` (the default) means no timeout.
    task_retries:
        Bounded retry count for *idempotent* partition tasks (pure
        scans).  0 — the default — preserves fail-fast seed behaviour.
    task_retry_backoff_seconds:
        Base of the exponential backoff slept between retry attempts.
    executor_kind:
        ``"thread"`` (default) or ``"process"``.  A process engine runs
        CPU-bound partition tasks on a ``ProcessPoolExecutor`` —
        genuinely parallel past the GIL.  Tables are published to an
        on-disk columnar block store that workers open via ``mmap``, so
        task submission ships only small plan descriptors, never data.
        Results stay bit-identical (partials merge in partition order on
        either engine); fan-outs whose plan fragment cannot travel fall
        back to the thread path transparently.  ``None`` reads the
        ``REPRO_EXECUTOR_KIND`` environment variable (CI runs the whole
        suite under ``process`` that way), defaulting to ``"thread"``.
    block_cache_entries:
        Per-partition entry capacity of the float-block LRU cache
        (historically hard-coded at 8).
    block_cache_bytes:
        Optional byte budget shared by every partition block cache of
        this database.  When the cached float blocks outgrow it, LRU
        entries are evicted and **spilled to disk**; later scans reload
        them as read-only mmaps instead of rebuilding from row lists.
        Eviction/spill activity is reported per statement in
        ``QueryMetrics`` (``cache_evictions``, ``blocks_spilled``,
        ``bytes_spilled``).

    A database holding a parallel engine owns a persistent pool;
    :meth:`close` releases it (the database stays usable — the pool is
    lazily re-created) along with the scratch directory backing the
    columnar store and spill files.  ``Database`` is also a context
    manager that closes on exit.
    """

    def __init__(
        self,
        amps: int = 20,
        cost_parameters: CostParameters | None = None,
        executor_workers: int = 1,
        vectorized_select: bool = True,
        faults: "FaultPlan | NullFaults | None" = None,
        task_timeout_seconds: float | None = None,
        task_retries: int = 0,
        task_retry_backoff_seconds: float = 0.01,
        executor_kind: str | None = None,
        block_cache_entries: int | None = None,
        block_cache_bytes: int | None = None,
    ) -> None:
        params = cost_parameters or CostParameters()
        params.amps = amps
        self.cost = CostModel(params=params)
        self.catalog = Catalog(default_partitions=amps)
        kind = executor_kind or os.environ.get("REPRO_EXECUTOR_KIND") or "thread"
        engine = PartitionEngine(
            executor_workers,
            timeout_seconds=task_timeout_seconds,
            max_retries=task_retries,
            retry_backoff_seconds=task_retry_backoff_seconds,
            faults=faults if faults is not None else NULL_FAULTS,
            kind=kind,
        )
        self._executor = Executor(self.catalog, self.cost, engine=engine)
        self._executor.vectorized_select = vectorized_select
        if faults is not None:
            self._executor.faults = faults
            self.catalog.install_faults(faults)
        #: scratch directory holding published columnar blocks and
        #: spilled cache blocks; created lazily, removed by close()
        self._scratch_dir: str | None = None
        if kind == "process":
            self._executor.columnar_store = ColumnarStore(
                Path(self._scratch_root()) / "blocks"
            )
        if block_cache_entries is not None or block_cache_bytes is not None:
            config = BlockCacheConfig(
                max_entries=(
                    block_cache_entries
                    if block_cache_entries is not None
                    else BLOCK_CACHE_CAPACITY
                ),
                max_bytes=block_cache_bytes,
                spill_dir=Path(self._scratch_root()) / "spill",
            )
            self.catalog.install_cache_config(config)
        #: callbacks fired by :meth:`close` *before* the engine pool is
        #: released; the serving layer subscribes here so in-flight
        #: score requests drain instead of deadlocking on a dead pool
        self._close_listeners: list[Any] = []

    def _scratch_root(self) -> str:
        if self._scratch_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-db-")
        return self._scratch_dir

    @property
    def executor_workers(self) -> int:
        """Worker count of the partition-execution engine."""
        return self._executor.engine.workers

    @executor_workers.setter
    def executor_workers(self, workers: int) -> None:
        old = self._executor.engine
        # Keep timeout/retry/fault/kind configuration across swaps.
        self._executor.engine = old.configured_like(workers)
        old.close()

    @property
    def executor_kind(self) -> str:
        """``"thread"`` or ``"process"`` — how parallel tasks execute."""
        return self._executor.engine.kind

    @executor_kind.setter
    def executor_kind(self, kind: str) -> None:
        old = self._executor.engine
        self._executor.engine = old.configured_like(old.workers, kind=kind)
        old.close()
        if kind == "process" and self._executor.columnar_store is None:
            self._executor.columnar_store = ColumnarStore(
                Path(self._scratch_root()) / "blocks"
            )

    @property
    def columnar_store(self) -> "ColumnarStore | None":
        """The on-disk block store backing process-pool execution
        (``None`` until a process engine needed one)."""
        return self._executor.columnar_store

    @property
    def block_cache_config(self) -> "BlockCacheConfig | None":
        """The installed block-cache policy (``None`` = module default)."""
        return self.catalog.cache_config

    @property
    def faults(self) -> "FaultPlan | NullFaults":
        """The installed fault plan (``NULL_FAULTS`` when none)."""
        return self._executor.faults

    @faults.setter
    def faults(self, faults: "FaultPlan | NullFaults | None") -> None:
        plan = faults if faults is not None else NULL_FAULTS
        self._executor.faults = plan
        self._executor.engine.faults = plan
        self.catalog.install_faults(plan)

    @property
    def task_timeout_seconds(self) -> float | None:
        """Per-task wall-clock budget (None = unbounded)."""
        return self._executor.engine.timeout_seconds

    @task_timeout_seconds.setter
    def task_timeout_seconds(self, seconds: float | None) -> None:
        self._executor.engine.timeout_seconds = seconds

    @property
    def task_retries(self) -> int:
        """Bounded retry count for idempotent partition tasks."""
        return self._executor.engine.max_retries

    @task_retries.setter
    def task_retries(self, retries: int) -> None:
        self._executor.engine.max_retries = retries

    @property
    def vectorized_select(self) -> bool:
        """Whether eligible SELECTs run block-wise (row path when False)."""
        return self._executor.vectorized_select

    @vectorized_select.setter
    def vectorized_select(self, enabled: bool) -> None:
        self._executor.vectorized_select = enabled

    @property
    def factorized_joins_enabled(self) -> bool:
        """Whether eligible star-join aggregates run factorized (per-base-
        table partial aggregates, the join never materialized).  On by
        default; disable to force the materialized nested-loop join —
        the reference path the factorized results are asserted against."""
        return self._executor.factorized_joins_enabled

    @factorized_joins_enabled.setter
    def factorized_joins_enabled(self, enabled: bool) -> None:
        self._executor.factorized_joins_enabled = enabled

    @property
    def last_factorize_decision(self) -> "Any | None":
        """The :class:`~repro.dbms.sql.factorize.FactorizeDecision` from
        the most recent join statement (``None`` before any)."""
        return self._executor.last_factorize_decision

    @property
    def summary_cache(self) -> "Any | None":
        """The summary-matrix cache, or ``None`` while never enabled.

        Created lazily by the first ``summary_cache_enabled = True``
        (see :class:`repro.core.summary_cache.SummaryCache`); disabling
        keeps the instance (and its warmed entries) around so toggling
        back on is free.
        """
        return self._executor.summary_cache

    @property
    def summary_cache_enabled(self) -> bool:
        """Whether grand summary-UDF statements may be served from the
        summary-matrix cache instead of scanning.  Off by default: a
        cache-served statement reports ``rows_scanned == 0`` and skips
        scan-path fault sites, which opt-in callers must expect."""
        cache = self._executor.summary_cache
        return cache is not None and cache.enabled

    @summary_cache_enabled.setter
    def summary_cache_enabled(self, enabled: bool) -> None:
        cache = self._executor.summary_cache
        if cache is None:
            if not enabled:
                return
            # Imported lazily: repro.core already imports repro.dbms, so
            # the dbms layer must not import core at module level.
            from repro.core.summary_cache import SummaryCache

            cache = SummaryCache(self)
            self._executor.summary_cache = cache
        cache.enabled = enabled

    def add_close_listener(self, listener: Any) -> None:
        """Invoke *listener()* at the start of every :meth:`close`.

        Listeners run before the engine pool is released and must be
        idempotent (``close`` may be called more than once).  The
        serving layer (:mod:`repro.serving`) registers its shutdown
        here: queued score requests drain and new sessions are rejected
        with a typed error before the pool they depend on disappears.
        """
        self._close_listeners.append(listener)

    def close(self) -> None:
        """Shut down the engine's persistent thread pool (idempotent).

        Close listeners (a :class:`~repro.serving.ServingServer`, for
        example) run first, so anything still executing through this
        database finishes or is rejected in a typed way before the pool
        goes away.
        """
        for listener in self._close_listeners:
            listener()
        self._executor.engine.close()
        if self._scratch_dir is not None:
            # Cached blocks may be backed by spill files under the
            # scratch dir; drop them before the files disappear.
            for table in self.catalog._tables.values():
                for partition in table.partitions:
                    partition._invalidate_cache()
            store = self._executor.columnar_store
            if store is not None:
                store._published.clear()
            shutil.rmtree(self._scratch_dir, ignore_errors=True)
            self._scratch_dir = None

    def serve(self, **kwargs: Any) -> "Any":
        """A :class:`~repro.serving.ServingServer` over this database.

        Keyword arguments are forwarded to the server constructor
        (``max_sessions``, ``max_batch_size``, ``max_wait_ms``,
        ``max_queue_depth``).  Imported lazily: the serving layer sits
        above both ``repro.dbms`` and ``repro.core``.
        """
        from repro.serving import ServingServer

        return ServingServer(self, **kwargs)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------- SQL
    def execute(self, sql: str) -> QueryResult:
        """Execute one or more ``;``-separated statements.

        Returns the result of the *last* statement; simulated seconds
        cover the whole script.
        """
        statements = parse_statements(sql)
        if not statements:
            raise ValueError("empty SQL script")
        with self.cost.clock.span() as span:
            relation: Relation | None = None
            for statement in statements:
                relation = self._run_statement(statement)
        assert relation is not None
        return QueryResult(
            columns=relation.column_names,
            rows=relation.rows,
            simulated_seconds=span.seconds,
            metrics=self._executor.last_metrics,
            plan=self._executor.last_plan,
        )

    def _run_statement(self, statement: "Any") -> Relation:
        """Execute one parsed statement — the single seam every
        statement of an ``execute()`` script passes through.
        :class:`~repro.dbms.wal.DurableDatabase` overrides this to group
        the statement's committed mutations into one atomic write-ahead
        log record (an UPDATE's truncate + re-insert replay as a unit)."""
        return self._executor.execute(statement)

    def execute_batch(self, statements: "Sequence[str]") -> list[QueryResult]:
        """Execute N SELECT statements, sharing one scan when provable.

        The guarded rewrite pass (:mod:`repro.dbms.sql.rewrite`) checks
        whether every statement is a single-table aggregate over the
        same stored table.  If so, ONE partition-parallel scan feeds
        every statement's accumulator states (identical statements
        additionally share one accumulation), and each result is
        bit-identical to executing that statement serially at any worker
        count.  If not, the batch silently runs serially — the decision,
        including the refusal reason, is inspectable via
        :meth:`explain_batch`.

        Returns one :class:`QueryResult` per input statement, in order.
        A consolidated batch runs as one unit of work: its statements
        share a single :class:`~repro.dbms.metrics.QueryMetrics` record
        and report the batch's total simulated seconds.
        """
        from repro.dbms.sql.ast import Select
        from repro.dbms.sql.parser import parse_statement
        from repro.dbms.sql.rewrite import plan_batch

        if not statements:
            raise ValueError("empty statement batch")
        selects = []
        for index, sql in enumerate(statements):
            statement = parse_statement(sql)
            if not isinstance(statement, Select):
                raise ValueError(
                    f"execute_batch takes SELECT statements only; "
                    f"statement {index + 1} is "
                    f"{type(statement).__name__}"
                )
            selects.append(statement)
        decision = plan_batch(self.catalog, selects)
        self._executor.last_batch_decision = decision
        if not decision.consolidated:
            return [self.execute(sql) for sql in statements]
        with self.cost.clock.span() as span:
            relations = self._executor.execute_batch(selects, decision)
        metrics = self._executor.last_metrics
        return [
            QueryResult(
                columns=relation.column_names,
                rows=relation.rows,
                simulated_seconds=span.seconds,
                metrics=metrics,
            )
            for relation in relations
        ]

    def explain_batch(
        self, statements: "Sequence[str]", analyze: bool = False
    ) -> Plan:
        """The structured plan :meth:`execute_batch` would run.

        A consolidated batch shows exactly one ``scan`` node — later
        distinct statements carry ``shared-scan`` markers — plus the
        rewrite pass's decision notes on the ``batch`` root; a refused
        batch keeps all N scans and notes the refusing guard.
        Analytical only by default (nothing executes, no time charged);
        ``analyze=True`` executes the batch under span tracing and
        attaches the measured spans.
        """
        from repro.dbms.sql.ast import Select
        from repro.dbms.sql.parser import parse_statement
        from repro.dbms.sql.rewrite import build_batch_plan, plan_batch
        from repro.dbms.trace import NULL_TRACER, Tracer

        if not statements:
            raise ValueError("empty statement batch")
        selects = []
        for index, sql in enumerate(statements):
            statement = parse_statement(sql)
            if not isinstance(statement, Select):
                raise ValueError(
                    f"explain_batch takes SELECT statements only; "
                    f"statement {index + 1} is "
                    f"{type(statement).__name__}"
                )
            selects.append(statement)
        decision = plan_batch(self.catalog, selects)
        self._executor.last_batch_decision = decision
        plan = build_batch_plan(
            self.catalog,
            selects,
            self.cost.params,
            decision,
            self._executor.vectorized_select,
        )
        if analyze:
            tracer = Tracer()
            self._executor.tracer = tracer
            try:
                if decision.consolidated:
                    self._executor.execute_batch(selects, decision)
                else:
                    for select in selects:
                        self._executor.execute(select)
            finally:
                self._executor.tracer = NULL_TRACER
            plan.analyze = True
            plan.attach_trace(tracer.root, self._executor.last_metrics)
        self._executor.last_plan = plan
        return plan

    def explain(self, sql: str, analyze: bool = False) -> str:
        """EXPLAIN a SELECT: plan tree, rewrites, estimated cost.

        Analytical only by default — nothing is executed and no time is
        charged.  With ``analyze=True`` the statement runs under span
        tracing and the text includes measured per-operator wall clock
        (equivalent to ``execute("EXPLAIN ANALYZE ...")``).
        """
        from repro.dbms.sql.ast import Explain, Select
        from repro.dbms.sql.parser import parse_statement

        statement = parse_statement(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        if not isinstance(statement, Select):
            raise ValueError("EXPLAIN is only supported for SELECT statements")
        relation = self._executor.execute(Explain(statement, analyze=analyze))
        return "\n".join(row[0] for row in relation.rows)

    def explain_plan(self, sql: str, analyze: bool = False) -> Plan:
        """The structured :class:`~repro.dbms.sql.plan.Plan` for a SELECT.

        Same semantics as :meth:`explain`, returning the operator tree
        instead of its rendered text — the API plan-shape tests and the
        bench harness assert against."""
        self.explain(sql, analyze=analyze)
        plan = self._executor.last_plan
        assert plan is not None
        return plan

    def execute_optimized(self, sql: str) -> QueryResult:
        """Execute one SELECT after the Section 3.6 rewrites (join
        elimination, group-by pushdown).  Results are identical to
        :meth:`execute`; only the plan — and therefore the simulated
        time — may differ."""
        from repro.dbms.sql.ast import Select
        from repro.dbms.sql.optimizer import QueryOptimizer
        from repro.dbms.sql.parser import parse_statement

        statement = parse_statement(sql)
        if not isinstance(statement, Select):
            return self.execute(sql)
        optimized = QueryOptimizer(self.catalog).optimize(statement).optimized
        with self.cost.clock.span() as span:
            relation = self._executor.execute(optimized)
        return QueryResult(
            columns=relation.column_names,
            rows=relation.rows,
            simulated_seconds=span.seconds,
            metrics=self._executor.last_metrics,
        )

    # ------------------------------------------------------------- catalogue
    def create_table(
        self,
        name: str,
        schema: TableSchema,
        row_scale: float = 1.0,
    ) -> Table:
        """Create a table directly (bypassing SQL), with an optional
        cost-model row scale for benchmarking (see repro.dbms.cost)."""
        return self.catalog.create_table(name, schema, row_scale=row_scale)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        self.catalog.drop_table(name, if_exists)

    def register_udf(self, udf: ScalarUdf | AggregateUdf) -> None:
        if isinstance(udf, AggregateUdf):
            self.catalog.register_aggregate_udf(udf)
        else:
            self.catalog.register_scalar_udf(udf)

    # --------------------------------------------------------------- loading
    def load_columns(
        self, table_name: str, columns: dict[str, "np.ndarray | Sequence[Any]"]
    ) -> int:
        """Bulk load column arrays into a table, charging insert cost."""
        table = self.catalog.table(table_name)
        loaded = table.bulk_load_arrays(columns)
        self.cost.charge_insert(loaded * table.row_scale, table.width)
        return loaded

    def insert_rows(
        self, table_name: str, rows: Iterable[Sequence[Any]]
    ) -> int:
        table = self.catalog.table(table_name)
        inserted = table.insert_many(rows)
        self.cost.charge_insert(inserted * table.row_scale, table.width)
        return inserted

    # ------------------------------------------------------------------ time
    @property
    def simulated_time(self) -> float:
        """Total simulated seconds charged so far."""
        return self.cost.clock.elapsed

    def reset_clock(self) -> None:
        self.cost.clock.reset()
