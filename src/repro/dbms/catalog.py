"""The system catalog: tables, views, and registered UDFs.

Name resolution is case-insensitive (like unquoted SQL identifiers).
Views store their defining SELECT AST; the planner expands them inline
as derived tables, which is how the paper's "X exists as a view"
scenario (Section 3.6) is executed.
"""

from __future__ import annotations

from typing import Callable

from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.functions import AGGREGATE_BUILTINS, SCALAR_BUILTINS
from repro.dbms.schema import TableSchema, validate_identifier
from repro.dbms.sql import ast
from repro.dbms.storage import BlockCacheConfig, Table
from repro.dbms.udf import AggregateUdf, ScalarUdf
from repro.errors import CatalogError, UdfRegistrationError


class Catalog:
    def __init__(self, default_partitions: int = 20) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ast.Select] = {}
        self._scalar_udfs: dict[str, ScalarUdf] = {}
        self._aggregate_udfs: dict[str, AggregateUdf] = {}
        self.default_partitions = default_partitions
        #: fault-injection plan handed to every table this catalog
        #: creates (storage-level ``insert.flush`` site); installed by
        #: ``Database(faults=...)``
        self.faults: FaultPlan | NullFaults = NULL_FAULTS
        #: block-cache policy handed to every table this catalog
        #: creates (entry capacity, byte budget, spill directory);
        #: ``None`` keeps the module default.  Installed by
        #: ``Database(block_cache_entries=..., block_cache_bytes=...)``
        self.cache_config: BlockCacheConfig | None = None
        #: callbacks fired with the lowercased table name after a DROP;
        #: caches keyed by table name (SummaryCache) subscribe here so a
        #: DROP — or DROP/CREATE of the same name — can't leave
        #: permanently dead entries behind
        self._drop_listeners: list[Callable[[str], object]] = []
        #: mutation listeners invoked as ``listener(op, name, payload)``
        #: after every committed DDL (create/drop table, create/drop
        #: view) *and* — because every table this catalog creates shares
        #: this very list — every committed data change.  One
        #: subscription here is the durability layer's single tap on the
        #: whole database (see :mod:`repro.dbms.wal`).
        self.mutation_listeners: list[Callable[[str, str, dict], object]] = []

    def install_faults(self, faults: "FaultPlan | NullFaults") -> None:
        """Point this catalog — and every existing table — at *faults*."""
        self.faults = faults
        for table in self._tables.values():
            table.faults = faults

    def install_cache_config(self, config: BlockCacheConfig) -> None:
        """Point this catalog — and every existing table — at *config*
        (existing cached blocks are invalidated by the swap)."""
        self.cache_config = config
        for table in self._tables.values():
            table.install_cache_config(config)

    def add_mutation_listener(
        self, listener: Callable[[str, str, dict], object]
    ) -> None:
        """Invoke *listener(op, name, payload)* after every committed
        mutation — DDL through this catalog and DML on any of its
        tables (the tables share this listener list)."""
        self.mutation_listeners.append(listener)

    def _notify(self, op: str, name: str, payload: dict) -> None:
        for listener in self.mutation_listeners:
            listener(op, name, payload)

    # ------------------------------------------------------------------ tables
    def create_table(
        self,
        name: str,
        schema: TableSchema,
        partitions: int | None = None,
        row_scale: float = 1.0,
        if_not_exists: bool = False,
    ) -> Table:
        validate_identifier(name, "table name")
        key = name.lower()
        if key in self._tables or key in self._views:
            if if_not_exists and key in self._tables:
                return self._tables[key]
            raise CatalogError(f"table or view {name!r} already exists")
        table = Table(
            name,
            schema,
            partitions=partitions or self.default_partitions,
            row_scale=row_scale,
        )
        table.faults = self.faults
        if self.cache_config is not None:
            table.install_cache_config(self.cache_config)
        table.mutation_listeners = self.mutation_listeners
        self._tables[key] = table
        if self.mutation_listeners:
            self._notify(
                "create_table",
                table.name,
                {
                    "columns": [
                        [c.name, c.sql_type.value, c.nullable]
                        for c in schema.columns
                    ],
                    "primary_key": schema.primary_key,
                    "partitions": table.partition_count,
                    "row_scale": table.row_scale,
                },
            )
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        for listener in self._drop_listeners:
            listener(key)
        if self.mutation_listeners:
            self._notify("drop_table", key, {})

    def add_drop_listener(self, listener: Callable[[str], object]) -> None:
        """Invoke *listener(lowercased_name)* after every table drop."""
        self._drop_listeners.append(listener)

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    # ------------------------------------------------------------------ views
    def create_view(
        self, name: str, select: ast.Select, or_replace: bool = False
    ) -> None:
        validate_identifier(name, "view name")
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"a table named {name!r} already exists")
        if key in self._views and not or_replace:
            raise CatalogError(f"view {name!r} already exists")
        self._views[key] = select
        if self.mutation_listeners:
            self._notify(
                "create_view",
                name,
                {"sql": ast.render(select), "or_replace": or_replace},
            )

    def view(self, name: str) -> ast.Select:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"unknown view {name!r}")
        del self._views[key]
        if self.mutation_listeners:
            self._notify("drop_view", key, {})

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------- UDFs
    def register_scalar_udf(self, udf: ScalarUdf) -> None:
        key = udf.name
        if key in SCALAR_BUILTINS or key in AGGREGATE_BUILTINS:
            raise UdfRegistrationError(
                f"cannot shadow builtin function {key!r}"
            )
        if key in self._scalar_udfs or key in self._aggregate_udfs:
            raise UdfRegistrationError(f"UDF {key!r} already registered")
        self._scalar_udfs[key] = udf

    def register_aggregate_udf(self, udf: AggregateUdf) -> None:
        key = udf.name
        if key in SCALAR_BUILTINS or key in AGGREGATE_BUILTINS:
            raise UdfRegistrationError(
                f"cannot shadow builtin function {key!r}"
            )
        if key in self._scalar_udfs or key in self._aggregate_udfs:
            raise UdfRegistrationError(f"UDF {key!r} already registered")
        self._aggregate_udfs[key] = udf

    def scalar_udf(self, name: str) -> ScalarUdf | None:
        return self._scalar_udfs.get(name.lower())

    def aggregate_udf(self, name: str) -> AggregateUdf | None:
        return self._aggregate_udfs.get(name.lower())

    def is_aggregate(self, name: str) -> bool:
        key = name.lower()
        return key in AGGREGATE_BUILTINS or key in self._aggregate_udfs

    def is_scalar_function(self, name: str) -> bool:
        key = name.lower()
        return key in SCALAR_BUILTINS or key in self._scalar_udfs
