"""The parallel partition-execution engine.

The paper's run-time story (Section 3.4) is partition-parallel
aggregation: every AMP scans its own horizontal partition and folds rows
into a private partial state; the partials are then merged into the
final answer.  The storage layer has always been partitioned that way —
this module makes the execution actually concurrent, and makes it
*survivable*: a slow, crashing, or flaky partition task may cost the
statement, never a hang, a leaked sibling task, or a nondeterministic
error.

:class:`PartitionEngine` runs one task per partition on a
``ThreadPoolExecutor`` or — ``kind="process"`` — a
``ProcessPoolExecutor``.  Threads are the right fit when the hot
per-partition work is vectorized numpy (block materialization of cached
float columns and the aggregate block updates — ``X.T @ X``, axis sums,
extrema — release the GIL), and they remain the default.  Processes are
the right fit for the **GIL-bound** sites: row-path aggregate
accumulation, fused clustering iterations over Python state machines,
and factorized fact-table folds, where every thread serializes on the
interpreter lock no matter how many cores exist.

The process path never pickles row data.  Callers pass ``map`` a
``payloads`` list of plain descriptors — ``(columnar-store root, table,
version, partition id, plan fragment)`` — and the worker process opens
the partition's published block file via ``mmap``
(:mod:`repro.dbms.columnar`), recompiles the plan fragment (cached per
worker), and returns only the partial state.  Tasks whose plan fragment
cannot be described this way (closures over lambdas, materialized
relations) simply pass ``payloads=None`` and run on threads — the
process executor is an optimization with a by-construction thread
fallback, never a correctness requirement.  Fault-plan semantics are
preserved by shipping each attempt a snapshot of the plan's counters
and absorbing the worker's counter deltas back into the coordinating
plan — for failed attempts too, which is what lets bounded retries
absorb flaky faults exactly as they do under threads (trip decisions
are keyed per ``(spec, partition)``, and a worker owns its partition
for the duration of the attempt).

Invariants the executor relies on:

* **Deterministic merge order.**  ``map`` returns results in *task
  submission order* (= partition order), never completion order, so the
  partial-result merge — and therefore every floating-point sum and the
  first-appearance ordering of GROUP BY keys — is identical whether the
  engine runs serial or with any number of workers.
* **Deterministic error identity.**  Results are gathered strictly in
  submission order, so the first failure the caller sees is always the
  lowest-numbered failing partition.  Serial execution (``workers=1``)
  re-raises that error as-is — bit-identical to the seed engine.
  Parallel execution raises
  :class:`~repro.errors.PartitionExecutionError` aggregating every
  *observed* sibling error with per-partition attribution; its
  ``first_error`` (also the ``__cause__``) is that same deterministic
  first failure.
* **No leaked work.**  On a fatal task failure the engine cancels every
  future that has not started and *waits out* the ones already running
  before raising — no task outlives the ``map`` call.  The one
  exception is a task **timeout**: a Python thread cannot be killed, so
  the engine abandons its pool (``shutdown(wait=False)``), lazily
  creates a fresh one for the next statement, and the stuck task stays
  visible through :attr:`PartitionEngine.active_tasks` until it
  finishes on the orphaned pool.

Fault tolerance knobs (all default off; see ``docs/fault_tolerance.md``):

* ``timeout_seconds`` — per-task result-wait budget.  Timeouts are
  fatal, never retried (the worker may still be running the task).
* ``max_retries`` / ``retry_backoff_seconds`` — bounded retries with
  exponential backoff, applied **only** to ``map(..., idempotent=True)``
  calls (pure partition scans are; DML is not).  Retries run inside the
  worker, so result ordering and pool occupancy are unchanged.
* ``faults`` — a :class:`~repro.dbms.faults.FaultPlan` arming the
  ``engine.task`` injection site inside the task wrapper.

With the defaults (``NULL_FAULTS``, no timeout, no retries) ``map``
takes the exact pre-supervision code path: no wrapper closures, no
bookkeeping, one extra attribute check — benchmarked by
``benchmarks/test_fault_overhead.py``.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs tasks inline, preserving the seed engine's bit-identical behaviour
and zero thread overhead.

The thread pool is **persistent**: it is created lazily on the first
parallel ``map`` call and reused by every subsequent one, so iterative
workloads (K-means/EM issue one scan per iteration) stop paying pool
construction and teardown per query.  :meth:`PartitionEngine.close`
shuts the pool down; ``Database.close()`` (and its context manager)
call it.  A closed engine simply re-creates the pool on next use.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Sequence, TypeVar

from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.trace import Span
from repro.errors import (
    ExecutionError,
    PartitionExecutionError,
    PartitionTimeoutError,
)

T = TypeVar("T")

#: engine executor kinds (``Database(executor_kind=...)``)
EXECUTOR_KINDS = ("thread", "process")


def _process_context():
    """The multiprocessing start method for worker pools.

    ``forkserver`` when available (cheap spawns, and — unlike ``fork``
    — no risk of duplicating the coordinator's held locks into a child
    that then deadlocks), ``spawn`` otherwise.  Never ``fork``.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")


class PartitionEngine:
    """Runs per-partition tasks serially or on a bounded worker pool."""

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout_seconds: float | None = None,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.01,
        faults: "FaultPlan | NullFaults" = NULL_FAULTS,
        kind: str = "thread",
    ) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}"
            )
        self._workers = workers
        self._kind = kind
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: Any | None = None
        self._pool_lock = threading.Lock()
        #: why the most recent ``map`` with payloads ran on threads
        #: anyway (unpicklable payload), or None (test introspection)
        self.last_process_fallback: str | None = None
        #: children terminated by the most recent ``_abandon_pool``
        #: (the process-latch test asserts these PIDs die)
        self.last_terminated_pids: list[int] = []
        #: pools created over this engine's lifetime (regression tests
        #: assert repeated queries reuse one pool instead of churning)
        self.pools_created = 0
        #: per-task wait budget; None = wait forever (seed behaviour)
        self.timeout_seconds = timeout_seconds
        #: bounded retry budget for idempotent tasks
        self.max_retries = max_retries
        #: first backoff sleep; doubles per attempt (exponential)
        self.retry_backoff_seconds = retry_backoff_seconds
        #: fault-injection plan consulted at the ``engine.task`` site
        self.faults = faults
        #: retries spent / timeouts hit by the most recent ``map`` call
        #: (coordinator-read; the executor folds them into QueryMetrics)
        self.last_task_retries = 0
        self.last_task_timeouts = 0
        self._active_lock = threading.Lock()
        self._active_tasks = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def kind(self) -> str:
        """``"thread"`` or ``"process"`` (the configured executor)."""
        return self._kind

    @property
    def parallel(self) -> bool:
        return self._workers > 1

    @property
    def uses_processes(self) -> bool:
        """Whether a ``map`` with payloads would fan out to processes."""
        return self._kind == "process" and self._workers > 1

    @property
    def active_tasks(self) -> int:
        """Tasks currently executing a body on any thread.

        Zero whenever no ``map`` call is in flight — except after a
        timeout, when the abandoned task stays counted until it finishes
        on the orphaned pool (chaos tests poll this to prove stuck work
        drains instead of leaking forever).
        """
        with self._active_lock:
            return self._active_tasks

    @property
    def supervised(self) -> bool:
        """Whether map() must wrap tasks (faults, timeouts or retries)."""
        return (
            self.faults.enabled
            or self.timeout_seconds is not None
            or self.max_retries > 0
        )

    def configured_like(
        self, workers: int, kind: str | None = None
    ) -> "PartitionEngine":
        """A new engine with this one's supervision config but *workers*
        workers (``Database.executor_workers`` swap path)."""
        return PartitionEngine(
            workers,
            timeout_seconds=self.timeout_seconds,
            max_retries=self.max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            faults=self.faults,
            kind=self._kind if kind is None else kind,
        )

    def _acquire_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily on first parallel use."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-amp",
                    )
                    self._pool = pool
                    self.pools_created += 1
        return pool

    def _acquire_process_pool(self) -> Any:
        """The persistent worker-process pool, created lazily.

        Creation warms the pool: every worker is spawned, runs the
        import-heavy initializer, and answers one warm-up task before
        this returns.  Cold-start cost is therefore paid once here —
        never against a real task's wall clock, so ``timeout_seconds``
        measures the task, not process spawning.
        """
        pool = self._process_pool
        if pool is None:
            with self._pool_lock:
                pool = self._process_pool
                if pool is None:
                    from concurrent.futures import ProcessPoolExecutor

                    from repro.dbms.parallel_worker import (
                        warm_worker,
                        worker_init,
                    )

                    pool = ProcessPoolExecutor(
                        max_workers=self._workers,
                        mp_context=_process_context(),
                        initializer=worker_init,
                    )
                    warmups = [
                        pool.submit(warm_worker, 0.05)
                        for _ in range(self._workers)
                    ]
                    for future in warmups:
                        try:
                            future.result(timeout=60.0)
                        except Exception:  # pragma: no cover - broken pool
                            # Leave the failure to the first real map,
                            # which has typed error handling for it.
                            break
                    self._process_pool = pool
                    self.pools_created += 1
        return pool

    def close(self) -> None:
        """Shut the persistent pools down (idempotent).

        The engine stays usable: the next parallel ``map`` lazily
        creates a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            process_pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if process_pool is not None:
            process_pool.shutdown(wait=True)

    def _abandon_pool(self) -> None:
        """Detach the pools without waiting (timeout path).

        Thread pool: its threads finish their current tasks and exit;
        the next parallel ``map`` creates a fresh pool so new statements
        never queue behind a stuck task.  Process pool: unlike a thread,
        a stuck child *can* be killed, so the engine terminates every
        worker process — no orphaned children survive a fatal timeout
        (:attr:`last_terminated_pids` records what was killed).
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            process_pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if process_pool is not None:
            self._terminate_process_pool(process_pool)

    def _terminate_process_pool(self, pool: Any) -> None:
        """Kill a process pool's children: terminate, bounded join,
        then SIGKILL stragglers.  Best-effort by design — the pool's
        own management thread may be reaping concurrently."""
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - internal layout changed
            processes = []
        self.last_terminated_pids = [
            proc.pid for proc in processes if proc.pid is not None
        ]
        pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + 5.0
        for proc in processes:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:  # pragma: no cover - already reaped
                pass
        for proc in processes:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            except Exception:  # pragma: no cover - already reaped
                pass

    def map(
        self,
        tasks: Sequence[Callable[[], T]],
        spans: list[Span] | None = None,
        *,
        idempotent: bool = False,
        partition_ids: Sequence[int] | None = None,
        payloads: Sequence[Any] | None = None,
    ) -> list[T]:
        """Run every task and return the results in task order.

        Completion order never matters: results are gathered by
        submission index, so merging ``map`` output left-to-right is
        deterministic regardless of scheduling.

        ``idempotent=True`` declares the tasks safe to re-run (pure
        partition scans); only then do the engine's bounded retries
        apply.  ``partition_ids`` (aligned with *tasks*) labels errors
        and timeouts with real partition numbers; the task index is used
        when omitted.

        When *spans* is a list (EXPLAIN ANALYZE tracing), one
        :class:`~repro.dbms.trace.Span` per task is appended to it — in
        task order — recording the task's run seconds, the time it
        waited in the pool queue, the worker thread that ran it, and
        (when supervision retried it) its ``retries`` count.  Each span
        is built inside its own task, so no shared state is written from
        worker threads; the caller attaches the collected spans to its
        trace afterwards.  ``spans=None`` (every non-traced query) adds
        no per-task work beyond a constant ``if``.

        *payloads* (aligned with *tasks*) offers a process-shippable
        descriptor per task: when this engine is ``kind="process"`` and
        parallel, the descriptors are pickled to pool worker processes
        instead of running *tasks* on threads (see
        :mod:`repro.dbms.parallel_worker`).  An unpicklable payload
        falls back to the thread path and records why in
        :attr:`last_process_fallback`.  ``payloads=None`` — tasks whose
        plan fragment cannot be described — always runs on threads.
        """
        self.last_task_retries = 0
        self.last_task_timeouts = 0
        if (
            payloads is not None
            and self._kind == "process"
            and self._workers > 1
            and len(tasks) > 1
            and len(payloads) == len(tasks)
        ):
            prepared = self._prepare_process(payloads)
            if prepared is not None:
                return self._run_process(
                    prepared,
                    spans,
                    idempotent=idempotent,
                    partition_ids=partition_ids,
                )
        supervised = self.supervised
        retry_counts: list[int] | None = None
        if supervised:
            # Each slot is written only by its own task's wrapper.
            retry_counts = [0] * len(tasks)

        if spans is None and not supervised:
            run_tasks: Sequence[Callable[[], T]] = tasks
        else:
            task_spans: list[Span | None] | None = (
                None if spans is None else [None] * len(tasks)
            )
            run_tasks = [
                self._instrument(
                    index,
                    task,
                    task_spans,
                    retry_counts,
                    idempotent,
                    partition_ids,
                )
                for index, task in enumerate(tasks)
            ]

        try:
            if self._workers == 1 or len(run_tasks) <= 1:
                results = self._run_inline(run_tasks, partition_ids)
            else:
                results = self._run_pooled(run_tasks, partition_ids)
        finally:
            # Counters must survive a raising map: a failed statement
            # (or one that degrades to the row path) still reports the
            # retries its tasks spent before giving up.
            if retry_counts is not None:
                self.last_task_retries = sum(retry_counts)
        if spans is not None:
            spans.extend(span for span in task_spans if span is not None)
        return results

    # ------------------------------------------------------------ wrappers
    def _instrument(
        self,
        index: int,
        task: Callable[[], T],
        task_spans: "list[Span | None] | None",
        retry_counts: "list[int] | None",
        idempotent: bool,
        partition_ids: Sequence[int] | None,
    ) -> Callable[[], T]:
        """Wrap one task with tracing and/or supervision.

        The retry loop lives *inside* the wrapper, so a retried task
        keeps its pool slot and its submission-order position; the
        backoff sleeps on the worker thread, never the coordinator.
        """
        submitted = time.perf_counter()
        faults = self.faults
        retries = self.max_retries if idempotent else 0
        backoff = self.retry_backoff_seconds
        partition = (
            partition_ids[index] if partition_ids is not None else index
        )

        def run() -> T:
            with self._active_lock:
                self._active_tasks += 1
            started = time.perf_counter()
            try:
                attempt = 0
                while True:
                    try:
                        if faults.enabled:
                            faults.fire(
                                "engine.task",
                                partition=partition,
                                attempt=attempt,
                            )
                        result = task()
                        break
                    except Exception:
                        if attempt >= retries:
                            raise
                        if backoff:
                            time.sleep(backoff * (2.0 ** attempt))
                        attempt += 1
                        if retry_counts is not None:
                            retry_counts[index] = attempt
                if task_spans is not None:
                    span = Span(
                        "task",
                        seconds=time.perf_counter() - started,
                        attributes={
                            "index": index,
                            "queued_seconds": started - submitted,
                            "thread": threading.current_thread().name,
                        },
                    )
                    if attempt:
                        span.attributes["retries"] = attempt
                    task_spans[index] = span
                return result
            finally:
                with self._active_lock:
                    self._active_tasks -= 1

        return run

    # ----------------------------------------------------------- execution
    def _run_inline(
        self,
        run_tasks: Sequence[Callable[[], T]],
        partition_ids: Sequence[int] | None,
    ) -> list[T]:
        """Serial execution: errors re-raise as-is (seed behaviour).

        A timeout cannot preempt an inline task, so it is enforced
        post-hoc: a task that ran longer than the budget still fails the
        statement, keeping serial and parallel runs of a delay fault
        equally fatal.
        """
        timeout = self.timeout_seconds
        results: list[T] = []
        for index, task in enumerate(run_tasks):
            started = time.perf_counter()
            results.append(task())
            if (
                timeout is not None
                and time.perf_counter() - started > timeout
            ):
                partition = (
                    partition_ids[index]
                    if partition_ids is not None
                    else index
                )
                self.last_task_timeouts += 1
                raise PartitionTimeoutError(partition, timeout)
        return results

    def _run_pooled(
        self,
        run_tasks: Sequence[Callable[[], T]],
        partition_ids: Sequence[int] | None,
    ) -> list[T]:
        """Pool execution with submission-order gathering, per-task
        timeouts, and cancel + drain on fatal failure."""
        pool = self._acquire_pool()
        futures: list[Future] = [pool.submit(task) for task in run_tasks]
        timeout = self.timeout_seconds
        results: list[T] = []
        errors: list[tuple[int | None, BaseException]] = []
        timed_out = False
        for index, future in enumerate(futures):
            partition = (
                partition_ids[index] if partition_ids is not None else index
            )
            try:
                results.append(future.result(timeout))
            except FutureTimeout:
                self.last_task_timeouts += 1
                errors.append(
                    (partition, PartitionTimeoutError(partition, timeout))
                )
                timed_out = True
                break
            except Exception as exc:
                errors.append((partition, exc))
                # First cancel everything still pending in one fast
                # pass — interleaving cancellation with draining would
                # let the workers grab (and run) tasks we are about to
                # cancel.  Then wait out the siblings that were already
                # running, collecting their errors (bounded wait — they
                # are not hung, or we would have configured a timeout)
                # for attribution, preserving this error as the
                # deterministic first.
                survivors = [
                    later_index
                    for later_index in range(index + 1, len(futures))
                    if not futures[later_index].cancel()
                ]
                for later_index in survivors:
                    later_partition = (
                        partition_ids[later_index]
                        if partition_ids is not None
                        else later_index
                    )
                    try:
                        futures[later_index].result(timeout)
                    except FutureTimeout:
                        self.last_task_timeouts += 1
                        errors.append(
                            (
                                later_partition,
                                PartitionTimeoutError(
                                    later_partition, timeout
                                ),
                            )
                        )
                        timed_out = True
                    except Exception as sibling_exc:
                        errors.append((later_partition, sibling_exc))
                break
        if not errors:
            return results
        cancelled = sum(1 for future in futures if future.cancelled())
        if timed_out:
            # The stuck worker cannot be interrupted; abandon the pool
            # so the next statement never queues behind it.
            self._abandon_pool()
        raise PartitionExecutionError(
            errors, cancelled=cancelled
        ) from errors[0][1]

    # ------------------------------------------------------ process path
    def _prepare_process(
        self, payloads: Sequence[Any]
    ) -> "list[Any] | None":
        """Pickle-probe the payloads (one cheap dumps) before fanning
        out; an unpicklable plan fragment (e.g. a lambda-backed UDF)
        means the statement runs on threads instead of failing."""
        self.last_process_fallback = None
        materialized = list(payloads)
        try:
            pickle.dumps(materialized)
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
            self.last_process_fallback = detail[:200]
            return None
        return materialized

    def _task_done(self, future: Future) -> None:
        with self._active_lock:
            self._active_tasks -= 1

    def _run_process(
        self,
        payloads: "list[Any]",
        spans: "list[Span] | None",
        *,
        idempotent: bool,
        partition_ids: Sequence[int] | None,
    ) -> list[Any]:
        """Fan payload descriptors out to worker processes.

        Mirrors ``_run_pooled``'s contract exactly: submission-order
        gathering (deterministic merge and first-error identity),
        cancel + drain on a fatal error, pool abandonment on timeout —
        plus the process-specific pieces:

        * Each attempt ships a :meth:`~repro.dbms.faults.FaultPlan.fork`
          snapshot of the fault plan; the worker returns its counter
          deltas (for failed attempts too), which are absorbed into the
          coordinating plan before any retry resubmits with a fresh
          fork.  Per-``(spec, partition)`` trip keys make this
          equivalent to threads firing on the shared plan.
        * Retries run on the coordinator (a resubmission), not inside
          the worker, because every attempt needs a fresh snapshot.
        * A broken pool (a worker died hard) surfaces as a typed
          :class:`~repro.errors.ExecutionError` inside the usual
          :class:`~repro.errors.PartitionExecutionError`.
        """
        from repro.dbms.parallel_worker import run_task

        pool = self._acquire_process_pool()
        plan = self.faults if isinstance(self.faults, FaultPlan) else None
        retries = self.max_retries if idempotent else 0
        backoff = self.retry_backoff_seconds
        timeout = self.timeout_seconds
        retry_counts = [0] * len(payloads)
        submitted_at = time.perf_counter()

        def partition_of(index: int) -> int:
            return (
                partition_ids[index] if partition_ids is not None else index
            )

        def submit(index: int, attempt: int) -> Future:
            snapshot = plan.fork() if plan is not None else None
            future = pool.submit(
                run_task,
                payloads[index],
                snapshot,
                partition_of(index),
                attempt,
            )
            with self._active_lock:
                self._active_tasks += 1
            future.add_done_callback(self._task_done)
            return future

        def absorb(meta: "dict[str, Any] | None") -> None:
            if plan is not None and meta:
                plan.absorb(meta.get("hits", {}), meta.get("tripped", {}))

        results: list[Any] = []
        errors: list[tuple[int | None, BaseException]] = []
        timed_out = False
        broken = False
        task_spans: "list[Span | None] | None" = (
            None if spans is None else [None] * len(payloads)
        )
        try:
            futures: list[Future] = [
                submit(index, 0) for index in range(len(payloads))
            ]
        except BrokenExecutor as exc:
            self._abandon_pool()
            error = ExecutionError(f"worker process pool broke: {exc}")
            raise PartitionExecutionError(
                [(partition_of(0), error)]
            ) from error
        try:
            for index, future in enumerate(list(futures)):
                partition = partition_of(index)
                attempt = 0
                seconds = 0.0
                pid: int | None = None
                try:
                    while True:
                        status, value, meta = futures[index].result(timeout)
                        absorb(meta)
                        if meta:
                            seconds += meta.get("seconds", 0.0)
                            pid = meta.get("pid", pid)
                        if status == "ok":
                            break
                        if attempt >= retries:
                            raise value
                        if backoff:
                            time.sleep(backoff * (2.0**attempt))
                        attempt += 1
                        retry_counts[index] = attempt
                        futures[index] = submit(index, attempt)
                except FutureTimeout:
                    self.last_task_timeouts += 1
                    errors.append(
                        (partition, PartitionTimeoutError(partition, timeout))
                    )
                    timed_out = True
                    break
                except BrokenExecutor as exc:
                    errors.append(
                        (
                            partition,
                            ExecutionError(
                                f"worker process pool broke: {exc}"
                            ),
                        )
                    )
                    broken = True
                    break
                except Exception as exc:
                    errors.append((partition, exc))
                    # Same fatal-error shape as the thread pool: cancel
                    # everything still pending in one pass, then wait
                    # out already-running siblings for attribution —
                    # absorbing their fault deltas so the coordinating
                    # plan's counters stay exact even on a failed
                    # statement.
                    survivors = [
                        later
                        for later in range(index + 1, len(futures))
                        if not futures[later].cancel()
                    ]
                    for later in survivors:
                        later_partition = partition_of(later)
                        try:
                            sib_status, sib_value, sib_meta = futures[
                                later
                            ].result(timeout)
                            absorb(sib_meta)
                            if sib_status != "ok":
                                errors.append((later_partition, sib_value))
                        except FutureTimeout:
                            self.last_task_timeouts += 1
                            errors.append(
                                (
                                    later_partition,
                                    PartitionTimeoutError(
                                        later_partition, timeout
                                    ),
                                )
                            )
                            timed_out = True
                        except Exception as sibling_exc:
                            errors.append((later_partition, sibling_exc))
                    break
                results.append(value)
                if task_spans is not None:
                    wall = time.perf_counter() - submitted_at
                    span = Span(
                        "task",
                        seconds=seconds,
                        attributes={
                            "index": index,
                            "queued_seconds": max(0.0, wall - seconds),
                            "thread": f"process-{pid}",
                        },
                    )
                    if attempt:
                        span.attributes["retries"] = attempt
                    task_spans[index] = span
        finally:
            self.last_task_retries = sum(retry_counts)
        if not errors:
            if spans is not None and task_spans is not None:
                spans.extend(
                    span for span in task_spans if span is not None
                )
            return results
        cancelled = sum(1 for future in futures if future.cancelled())
        if timed_out or broken:
            # A stuck or dead child must not leak: terminate the pool's
            # worker processes (recorded in ``last_terminated_pids``).
            self._abandon_pool()
        raise PartitionExecutionError(
            errors, cancelled=cancelled
        ) from errors[0][1]
