"""The parallel partition-execution engine.

The paper's run-time story (Section 3.4) is partition-parallel
aggregation: every AMP scans its own horizontal partition and folds rows
into a private partial state; the partials are then merged into the
final answer.  The storage layer has always been partitioned that way —
this module makes the execution actually concurrent.

:class:`PartitionEngine` runs one task per partition on a
``ThreadPoolExecutor``.  Threads (not processes) are the right fit
because the hot per-partition work is vectorized numpy — block
materialization of cached float columns and the aggregate block updates
(``X.T @ X``, axis sums, extrema) — which releases the GIL; the
per-partition partial states stay plain in-process Python objects that
the merge step can combine without serialization.

Two invariants the executor relies on:

* **Deterministic merge order.**  ``map`` returns results in *task
  submission order* (= partition order), never completion order, so the
  partial-result merge — and therefore every floating-point sum and the
  first-appearance ordering of GROUP BY keys — is identical whether the
  engine runs serial or with any number of workers.
* **Fail-fast error propagation.**  The first task exception (in
  partition order) is re-raised to the caller; UDF argument errors and
  memory-limit violations surface exactly as they do serially.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs tasks inline, preserving the seed engine's bit-identical behaviour
and zero thread overhead.

The thread pool is **persistent**: it is created lazily on the first
parallel ``map`` call and reused by every subsequent one, so iterative
workloads (K-means/EM issue one scan per iteration) stop paying pool
construction and teardown per query.  :meth:`PartitionEngine.close`
shuts the pool down; ``Database.close()`` (and its context manager)
call it.  A closed engine simply re-creates the pool on next use.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.dbms.trace import Span

T = TypeVar("T")


class PartitionEngine:
    """Runs per-partition tasks serially or on a bounded thread pool."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: pools created over this engine's lifetime (regression tests
        #: assert repeated queries reuse one pool instead of churning)
        self.pools_created = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def parallel(self) -> bool:
        return self._workers > 1

    def _acquire_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily on first parallel use."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-amp",
                    )
                    self._pool = pool
                    self.pools_created += 1
        return pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent).

        The engine stays usable: the next parallel ``map`` lazily
        creates a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map(
        self,
        tasks: Sequence[Callable[[], T]],
        spans: list[Span] | None = None,
    ) -> list[T]:
        """Run every task and return the results in task order.

        Completion order never matters: results are gathered by
        submission index, so merging ``map`` output left-to-right is
        deterministic regardless of scheduling.

        When *spans* is a list (EXPLAIN ANALYZE tracing), one
        :class:`~repro.dbms.trace.Span` per task is appended to it — in
        task order — recording the task's run seconds, the time it
        waited in the pool queue, and the worker thread that ran it.
        Each span is built inside its own task, so no shared state is
        written from worker threads; the caller attaches the collected
        spans to its trace afterwards.  ``spans=None`` (every non-traced
        query) adds no per-task work beyond a constant ``if``.
        """
        if spans is None:
            run_tasks: Sequence[Callable[[], T]] = tasks
        else:
            task_spans: list[Span | None] = [None] * len(tasks)

            def instrument(index: int, task: Callable[[], T]) -> Callable[[], T]:
                submitted = time.perf_counter()

                def run() -> T:
                    started = time.perf_counter()
                    result = task()
                    task_spans[index] = Span(
                        "task",
                        seconds=time.perf_counter() - started,
                        attributes={
                            "index": index,
                            "queued_seconds": started - submitted,
                            "thread": threading.current_thread().name,
                        },
                    )
                    return result

                return run

            run_tasks = [
                instrument(index, task) for index, task in enumerate(tasks)
            ]

        if self._workers == 1 or len(run_tasks) <= 1:
            results = [task() for task in run_tasks]
        else:
            pool = self._acquire_pool()
            futures = [pool.submit(task) for task in run_tasks]
            # result() re-raises the task's exception; iterating in
            # submission order keeps error attribution deterministic.
            results = [future.result() for future in futures]
        if spans is not None:
            spans.extend(span for span in task_spans if span is not None)
        return results
