"""The parallel partition-execution engine.

The paper's run-time story (Section 3.4) is partition-parallel
aggregation: every AMP scans its own horizontal partition and folds rows
into a private partial state; the partials are then merged into the
final answer.  The storage layer has always been partitioned that way —
this module makes the execution actually concurrent.

:class:`PartitionEngine` runs one task per partition on a
``ThreadPoolExecutor``.  Threads (not processes) are the right fit
because the hot per-partition work is vectorized numpy — block
materialization of cached float columns and the aggregate block updates
(``X.T @ X``, axis sums, extrema) — which releases the GIL; the
per-partition partial states stay plain in-process Python objects that
the merge step can combine without serialization.

Two invariants the executor relies on:

* **Deterministic merge order.**  ``map`` returns results in *task
  submission order* (= partition order), never completion order, so the
  partial-result merge — and therefore every floating-point sum and the
  first-appearance ordering of GROUP BY keys — is identical whether the
  engine runs serial or with any number of workers.
* **Fail-fast error propagation.**  The first task exception (in
  partition order) is re-raised to the caller; UDF argument errors and
  memory-limit violations surface exactly as they do serially.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs tasks inline, preserving the seed engine's bit-identical behaviour
and zero thread overhead.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


class PartitionEngine:
    """Runs per-partition tasks serially or on a bounded thread pool."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._workers = workers

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def parallel(self) -> bool:
        return self._workers > 1

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run every task and return the results in task order.

        Completion order never matters: results are gathered by
        submission index, so merging ``map`` output left-to-right is
        deterministic regardless of scheduling.
        """
        if self._workers == 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        pool_size = min(self._workers, len(tasks))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-amp"
        ) as pool:
            futures = [pool.submit(task) for task in tasks]
            # result() re-raises the task's exception; iterating in
            # submission order keeps error attribution deterministic too.
            return [future.result() for future in futures]
