"""The parallel partition-execution engine.

The paper's run-time story (Section 3.4) is partition-parallel
aggregation: every AMP scans its own horizontal partition and folds rows
into a private partial state; the partials are then merged into the
final answer.  The storage layer has always been partitioned that way —
this module makes the execution actually concurrent, and makes it
*survivable*: a slow, crashing, or flaky partition task may cost the
statement, never a hang, a leaked sibling task, or a nondeterministic
error.

:class:`PartitionEngine` runs one task per partition on a
``ThreadPoolExecutor``.  Threads (not processes) are the right fit
because the hot per-partition work is vectorized numpy — block
materialization of cached float columns and the aggregate block updates
(``X.T @ X``, axis sums, extrema) — which releases the GIL; the
per-partition partial states stay plain in-process Python objects that
the merge step can combine without serialization.

Invariants the executor relies on:

* **Deterministic merge order.**  ``map`` returns results in *task
  submission order* (= partition order), never completion order, so the
  partial-result merge — and therefore every floating-point sum and the
  first-appearance ordering of GROUP BY keys — is identical whether the
  engine runs serial or with any number of workers.
* **Deterministic error identity.**  Results are gathered strictly in
  submission order, so the first failure the caller sees is always the
  lowest-numbered failing partition.  Serial execution (``workers=1``)
  re-raises that error as-is — bit-identical to the seed engine.
  Parallel execution raises
  :class:`~repro.errors.PartitionExecutionError` aggregating every
  *observed* sibling error with per-partition attribution; its
  ``first_error`` (also the ``__cause__``) is that same deterministic
  first failure.
* **No leaked work.**  On a fatal task failure the engine cancels every
  future that has not started and *waits out* the ones already running
  before raising — no task outlives the ``map`` call.  The one
  exception is a task **timeout**: a Python thread cannot be killed, so
  the engine abandons its pool (``shutdown(wait=False)``), lazily
  creates a fresh one for the next statement, and the stuck task stays
  visible through :attr:`PartitionEngine.active_tasks` until it
  finishes on the orphaned pool.

Fault tolerance knobs (all default off; see ``docs/fault_tolerance.md``):

* ``timeout_seconds`` — per-task result-wait budget.  Timeouts are
  fatal, never retried (the worker may still be running the task).
* ``max_retries`` / ``retry_backoff_seconds`` — bounded retries with
  exponential backoff, applied **only** to ``map(..., idempotent=True)``
  calls (pure partition scans are; DML is not).  Retries run inside the
  worker, so result ordering and pool occupancy are unchanged.
* ``faults`` — a :class:`~repro.dbms.faults.FaultPlan` arming the
  ``engine.task`` injection site inside the task wrapper.

With the defaults (``NULL_FAULTS``, no timeout, no retries) ``map``
takes the exact pre-supervision code path: no wrapper closures, no
bookkeeping, one extra attribute check — benchmarked by
``benchmarks/test_fault_overhead.py``.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs tasks inline, preserving the seed engine's bit-identical behaviour
and zero thread overhead.

The thread pool is **persistent**: it is created lazily on the first
parallel ``map`` call and reused by every subsequent one, so iterative
workloads (K-means/EM issue one scan per iteration) stop paying pool
construction and teardown per query.  :meth:`PartitionEngine.close`
shuts the pool down; ``Database.close()`` (and its context manager)
call it.  A closed engine simply re-creates the pool on next use.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, Sequence, TypeVar

from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.trace import Span
from repro.errors import PartitionExecutionError, PartitionTimeoutError

T = TypeVar("T")


class PartitionEngine:
    """Runs per-partition tasks serially or on a bounded thread pool."""

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout_seconds: float | None = None,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.01,
        faults: "FaultPlan | NullFaults" = NULL_FAULTS,
    ) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        self._workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: pools created over this engine's lifetime (regression tests
        #: assert repeated queries reuse one pool instead of churning)
        self.pools_created = 0
        #: per-task wait budget; None = wait forever (seed behaviour)
        self.timeout_seconds = timeout_seconds
        #: bounded retry budget for idempotent tasks
        self.max_retries = max_retries
        #: first backoff sleep; doubles per attempt (exponential)
        self.retry_backoff_seconds = retry_backoff_seconds
        #: fault-injection plan consulted at the ``engine.task`` site
        self.faults = faults
        #: retries spent / timeouts hit by the most recent ``map`` call
        #: (coordinator-read; the executor folds them into QueryMetrics)
        self.last_task_retries = 0
        self.last_task_timeouts = 0
        self._active_lock = threading.Lock()
        self._active_tasks = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def parallel(self) -> bool:
        return self._workers > 1

    @property
    def active_tasks(self) -> int:
        """Tasks currently executing a body on any thread.

        Zero whenever no ``map`` call is in flight — except after a
        timeout, when the abandoned task stays counted until it finishes
        on the orphaned pool (chaos tests poll this to prove stuck work
        drains instead of leaking forever).
        """
        with self._active_lock:
            return self._active_tasks

    @property
    def supervised(self) -> bool:
        """Whether map() must wrap tasks (faults, timeouts or retries)."""
        return (
            self.faults.enabled
            or self.timeout_seconds is not None
            or self.max_retries > 0
        )

    def configured_like(self, workers: int) -> "PartitionEngine":
        """A new engine with this one's supervision config but *workers*
        threads (``Database.executor_workers`` swap path)."""
        return PartitionEngine(
            workers,
            timeout_seconds=self.timeout_seconds,
            max_retries=self.max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            faults=self.faults,
        )

    def _acquire_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, created lazily on first parallel use."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-amp",
                    )
                    self._pool = pool
                    self.pools_created += 1
        return pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent).

        The engine stays usable: the next parallel ``map`` lazily
        creates a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _abandon_pool(self) -> None:
        """Detach the pool without waiting (timeout path): its threads
        finish their current tasks and exit; the next parallel ``map``
        creates a fresh pool so new statements never queue behind a
        stuck task."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def map(
        self,
        tasks: Sequence[Callable[[], T]],
        spans: list[Span] | None = None,
        *,
        idempotent: bool = False,
        partition_ids: Sequence[int] | None = None,
    ) -> list[T]:
        """Run every task and return the results in task order.

        Completion order never matters: results are gathered by
        submission index, so merging ``map`` output left-to-right is
        deterministic regardless of scheduling.

        ``idempotent=True`` declares the tasks safe to re-run (pure
        partition scans); only then do the engine's bounded retries
        apply.  ``partition_ids`` (aligned with *tasks*) labels errors
        and timeouts with real partition numbers; the task index is used
        when omitted.

        When *spans* is a list (EXPLAIN ANALYZE tracing), one
        :class:`~repro.dbms.trace.Span` per task is appended to it — in
        task order — recording the task's run seconds, the time it
        waited in the pool queue, the worker thread that ran it, and
        (when supervision retried it) its ``retries`` count.  Each span
        is built inside its own task, so no shared state is written from
        worker threads; the caller attaches the collected spans to its
        trace afterwards.  ``spans=None`` (every non-traced query) adds
        no per-task work beyond a constant ``if``.
        """
        self.last_task_retries = 0
        self.last_task_timeouts = 0
        supervised = self.supervised
        retry_counts: list[int] | None = None
        if supervised:
            # Each slot is written only by its own task's wrapper.
            retry_counts = [0] * len(tasks)

        if spans is None and not supervised:
            run_tasks: Sequence[Callable[[], T]] = tasks
        else:
            task_spans: list[Span | None] | None = (
                None if spans is None else [None] * len(tasks)
            )
            run_tasks = [
                self._instrument(
                    index,
                    task,
                    task_spans,
                    retry_counts,
                    idempotent,
                    partition_ids,
                )
                for index, task in enumerate(tasks)
            ]

        try:
            if self._workers == 1 or len(run_tasks) <= 1:
                results = self._run_inline(run_tasks, partition_ids)
            else:
                results = self._run_pooled(run_tasks, partition_ids)
        finally:
            # Counters must survive a raising map: a failed statement
            # (or one that degrades to the row path) still reports the
            # retries its tasks spent before giving up.
            if retry_counts is not None:
                self.last_task_retries = sum(retry_counts)
        if spans is not None:
            spans.extend(span for span in task_spans if span is not None)
        return results

    # ------------------------------------------------------------ wrappers
    def _instrument(
        self,
        index: int,
        task: Callable[[], T],
        task_spans: "list[Span | None] | None",
        retry_counts: "list[int] | None",
        idempotent: bool,
        partition_ids: Sequence[int] | None,
    ) -> Callable[[], T]:
        """Wrap one task with tracing and/or supervision.

        The retry loop lives *inside* the wrapper, so a retried task
        keeps its pool slot and its submission-order position; the
        backoff sleeps on the worker thread, never the coordinator.
        """
        submitted = time.perf_counter()
        faults = self.faults
        retries = self.max_retries if idempotent else 0
        backoff = self.retry_backoff_seconds
        partition = (
            partition_ids[index] if partition_ids is not None else index
        )

        def run() -> T:
            with self._active_lock:
                self._active_tasks += 1
            started = time.perf_counter()
            try:
                attempt = 0
                while True:
                    try:
                        if faults.enabled:
                            faults.fire(
                                "engine.task",
                                partition=partition,
                                attempt=attempt,
                            )
                        result = task()
                        break
                    except Exception:
                        if attempt >= retries:
                            raise
                        if backoff:
                            time.sleep(backoff * (2.0 ** attempt))
                        attempt += 1
                        if retry_counts is not None:
                            retry_counts[index] = attempt
                if task_spans is not None:
                    span = Span(
                        "task",
                        seconds=time.perf_counter() - started,
                        attributes={
                            "index": index,
                            "queued_seconds": started - submitted,
                            "thread": threading.current_thread().name,
                        },
                    )
                    if attempt:
                        span.attributes["retries"] = attempt
                    task_spans[index] = span
                return result
            finally:
                with self._active_lock:
                    self._active_tasks -= 1

        return run

    # ----------------------------------------------------------- execution
    def _run_inline(
        self,
        run_tasks: Sequence[Callable[[], T]],
        partition_ids: Sequence[int] | None,
    ) -> list[T]:
        """Serial execution: errors re-raise as-is (seed behaviour).

        A timeout cannot preempt an inline task, so it is enforced
        post-hoc: a task that ran longer than the budget still fails the
        statement, keeping serial and parallel runs of a delay fault
        equally fatal.
        """
        timeout = self.timeout_seconds
        results: list[T] = []
        for index, task in enumerate(run_tasks):
            started = time.perf_counter()
            results.append(task())
            if (
                timeout is not None
                and time.perf_counter() - started > timeout
            ):
                partition = (
                    partition_ids[index]
                    if partition_ids is not None
                    else index
                )
                self.last_task_timeouts += 1
                raise PartitionTimeoutError(partition, timeout)
        return results

    def _run_pooled(
        self,
        run_tasks: Sequence[Callable[[], T]],
        partition_ids: Sequence[int] | None,
    ) -> list[T]:
        """Pool execution with submission-order gathering, per-task
        timeouts, and cancel + drain on fatal failure."""
        pool = self._acquire_pool()
        futures: list[Future] = [pool.submit(task) for task in run_tasks]
        timeout = self.timeout_seconds
        results: list[T] = []
        errors: list[tuple[int | None, BaseException]] = []
        timed_out = False
        for index, future in enumerate(futures):
            partition = (
                partition_ids[index] if partition_ids is not None else index
            )
            try:
                results.append(future.result(timeout))
            except FutureTimeout:
                self.last_task_timeouts += 1
                errors.append(
                    (partition, PartitionTimeoutError(partition, timeout))
                )
                timed_out = True
                break
            except Exception as exc:
                errors.append((partition, exc))
                # First cancel everything still pending in one fast
                # pass — interleaving cancellation with draining would
                # let the workers grab (and run) tasks we are about to
                # cancel.  Then wait out the siblings that were already
                # running, collecting their errors (bounded wait — they
                # are not hung, or we would have configured a timeout)
                # for attribution, preserving this error as the
                # deterministic first.
                survivors = [
                    later_index
                    for later_index in range(index + 1, len(futures))
                    if not futures[later_index].cancel()
                ]
                for later_index in survivors:
                    later_partition = (
                        partition_ids[later_index]
                        if partition_ids is not None
                        else later_index
                    )
                    try:
                        futures[later_index].result(timeout)
                    except FutureTimeout:
                        self.last_task_timeouts += 1
                        errors.append(
                            (
                                later_partition,
                                PartitionTimeoutError(
                                    later_partition, timeout
                                ),
                            )
                        )
                        timed_out = True
                    except Exception as sibling_exc:
                        errors.append((later_partition, sibling_exc))
                break
        if not errors:
            return results
        cancelled = sum(1 for future in futures if future.cancelled())
        if timed_out:
            # The stuck worker cannot be interrupted; abandon the pool
            # so the next statement never queues behind it.
            self._abandon_pool()
        raise PartitionExecutionError(
            errors, cancelled=cancelled
        ) from errors[0][1]
