"""Table schemas: ordered, typed columns with an optional primary key.

The paper's canonical layout is ``X(i, X1, ..., Xd)`` with primary key
``i`` — a point id column followed by ``d`` numeric dimensions.  The
:func:`dataset_schema` helper builds exactly that layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.dbms.types import SqlType
from repro.errors import SchemaError

_MAX_IDENTIFIER_LENGTH = 128


def validate_identifier(name: str, kind: str = "identifier") -> str:
    """Validate a SQL identifier (table or column name).

    Identifiers must start with a letter or underscore and contain only
    letters, digits and underscores, like unquoted SQL identifiers.
    """
    if not name:
        raise SchemaError(f"empty {kind}")
    if len(name) > _MAX_IDENTIFIER_LENGTH:
        raise SchemaError(f"{kind} {name!r} exceeds {_MAX_IDENTIFIER_LENGTH} chars")
    first = name[0]
    if not (first.isalpha() or first == "_"):
        raise SchemaError(f"{kind} {name!r} must start with a letter or underscore")
    for ch in name[1:]:
        if not (ch.isalnum() or ch == "_"):
            raise SchemaError(f"{kind} {name!r} contains invalid character {ch!r}")
    return name


@dataclass(frozen=True)
class Column:
    """One column of a table: a name, a SQL type, and nullability."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        validate_identifier(self.name, "column name")

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.sql_type.value}{null}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns with an optional primary key.

    Column lookup is case-insensitive, as in SQL; the declared casing is
    preserved for display.
    """

    columns: tuple[Column, ...]
    primary_key: str | None = None
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a table must have at least one column")
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column name {column.name!r}")
            index[key] = position
        object.__setattr__(self, "_index", index)
        if self.primary_key is not None and self.primary_key.lower() not in index:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of the table"
            )

    @classmethod
    def build(
        cls,
        columns: Iterable[Column | tuple[str, SqlType]],
        primary_key: str | None = None,
    ) -> "TableSchema":
        """Build a schema from :class:`Column` objects or (name, type) pairs."""
        normalized = tuple(
            col if isinstance(col, Column) else Column(col[0], col[1])
            for col in columns
        )
        return cls(normalized, primary_key)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def position_of(self, name: str) -> int:
        """The 0-based position of column *name* (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def numeric_columns(self) -> tuple[str, ...]:
        """Names of all numeric columns, in declaration order."""
        return tuple(
            column.name for column in self.columns if column.sql_type.is_numeric
        )

    def ddl(self, table_name: str) -> str:
        """Render this schema as a CREATE TABLE statement."""
        cols = ", ".join(str(column) for column in self.columns)
        pk = f", PRIMARY KEY ({self.primary_key})" if self.primary_key else ""
        return f"CREATE TABLE {table_name} ({cols}{pk})"


def dataset_schema(
    d: int,
    with_y: bool = False,
    id_column: str = "i",
    dimension_prefix: str = "x",
) -> TableSchema:
    """The paper's data-set layout: ``X(i, X1, ..., Xd[, Y])``.

    *d* is the dimensionality; when *with_y* is true an extra dependent
    variable column ``y`` is appended (the linear-regression layout).
    """
    if d < 1:
        raise SchemaError(f"dimensionality must be >= 1, got {d}")
    columns: list[Column] = [Column(id_column, SqlType.INTEGER, nullable=False)]
    columns.extend(
        Column(f"{dimension_prefix}{a}", SqlType.FLOAT) for a in range(1, d + 1)
    )
    if with_y:
        columns.append(Column("y", SqlType.FLOAT))
    return TableSchema(tuple(columns), primary_key=id_column)


def dimension_names(d: int, prefix: str = "x") -> list[str]:
    """Column names ``[x1, ..., xd]`` used throughout the reproduction."""
    return [f"{prefix}{a}" for a in range(1, d + 1)]


def model_schema(d: int, with_index: bool = False) -> TableSchema:
    """Schema for model tables: ``(j, X1..Xd)`` or just ``(X1..Xd)``.

    The paper stores β in BETA(β1..βd), Λ in LAMBDA(j, X1..Xd), centroids
    in C(j, X1..Xd), and so on; this helper covers both layouts.
    """
    columns: list[Column] = []
    if with_index:
        columns.append(Column("j", SqlType.INTEGER, nullable=False))
    columns.extend(Column(name, SqlType.FLOAT) for name in dimension_names(d))
    return TableSchema(
        tuple(columns), primary_key="j" if with_index else None
    )


def rows_match_schema(schema: TableSchema, rows: Sequence[Sequence[object]]) -> None:
    """Raise :class:`SchemaError` if any row has the wrong arity."""
    width = len(schema)
    for position, row in enumerate(rows):
        if len(row) != width:
            raise SchemaError(
                f"row {position} has {len(row)} values, schema has {width} columns"
            )
