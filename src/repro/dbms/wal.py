"""Crash-safe durability: write-ahead log, atomic checkpoints, recovery.

:mod:`repro.dbms.persistence` can *save* a database; this module makes a
database survive being **killed**.  A :class:`DurableDatabase` owns a
directory with three kinds of files::

    <dir>/MANIFEST             one small JSON pointer: which checkpoint
                               is current and the LSN it covers
    <dir>/checkpoint-NNNNNN/   a full save_database() snapshot
    <dir>/wal.log              the write-ahead log since that checkpoint

**Logging.**  Every committed mutation — the row batches
``insert_many`` flushes, bulk loads, truncates, and DDL — reaches the
durability layer through the catalog's mutation listeners (the same
subscription pattern as the catalog's drop listeners).  Mutations are
grouped per *statement*: an UPDATE executes as truncate + re-insert,
and both land in ONE log record so replay can never observe the torn
middle.  Each record carries a monotonically increasing LSN and a
CRC-32 over its header and payload; the payload is compact JSON whose
float repr round-trips bit-exactly.

**Checkpointing.**  :meth:`DurableDatabase.checkpoint` writes a fresh
snapshot directory with ``fsync=True``, atomically renames it into
place, then swaps the MANIFEST (temp file + ``os.replace`` + directory
fsync) and truncates the WAL.  A crash at *any* point leaves either the
old manifest (WAL still replays on the old checkpoint) or the new one
(stale WAL records are skipped by LSN) — never a half state.

**Recovery.**  :func:`open_durable` on an existing directory loads the
manifest's checkpoint and replays every WAL record with
``lsn > checkpoint lsn``.  A torn tail — the unsynced bytes a real
crash loses — is detected by checksum and truncated, ARIES-style.
Corruption *before* intact records, or an LSN gap, is not a torn tail:
that durable state cannot be trusted, and recovery raises a typed
:class:`~repro.errors.RecoveryError` instead of guessing.

**Crash injection.**  The fault sites ``wal.append``, ``wal.fsync`` and
``checkpoint.write`` accept :class:`~repro.errors.SimulatedCrash`: the
session then *dies deterministically* — the on-disk WAL is truncated to
its last fsynced byte (optionally keeping a torn prefix of the first
lost record), and every further statement raises ``RecoveryError``
until the directory is reopened.  The chaos suite uses this to assert
the committed-prefix invariant: a recovered database is content-
identical (:func:`~repro.dbms.persistence.database_fingerprint`) to
*some* committed prefix of the write history — never a torn row.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.dbms.database import Database
from repro.dbms.metrics import DurabilityMetrics
from repro.dbms.persistence import (
    _fsync_path,
    restore_database_into,
    save_database,
)
from repro.dbms.schema import Column, TableSchema
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.dbms.types import SqlType
from repro.dbms.sql.executor import Relation
from repro.errors import DatabaseError, RecoveryError, SimulatedCrash

_MAGIC = b"WREC"
#: record header: magic, LSN (u64 BE), payload length (u32 BE),
#: CRC-32 (u32 BE) over ``pack(">QI", lsn, length) + payload``
_HEADER = struct.Struct(">4sQII")

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
FSYNC_MODES = ("always", "batch", "off")


# --------------------------------------------------------------------- codec
def encode_record(lsn: int, ops: "list[dict]") -> bytes:
    """Serialize one commit record (header + compact-JSON payload)."""
    payload = json.dumps({"ops": ops}, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(struct.pack(">QI", lsn, len(payload)) + payload)
    return _HEADER.pack(_MAGIC, lsn, len(payload), crc) + payload


@dataclass
class WalRecord:
    """One decoded commit record."""

    lsn: int
    ops: "list[dict]"
    offset: int  #: byte offset of the record's header in the file
    length: int  #: total serialized length (header + payload)


def _try_decode(data: bytes, offset: int) -> "tuple[WalRecord, int] | None":
    """Decode the record starting at *offset*, or ``None`` if the bytes
    there are not a complete, checksum-valid record."""
    if offset + _HEADER.size > len(data):
        return None
    magic, lsn, length, crc = _HEADER.unpack_from(data, offset)
    if magic != _MAGIC:
        return None
    end = offset + _HEADER.size + length
    if end > len(data):
        return None
    payload = data[offset + _HEADER.size : end]
    if zlib.crc32(struct.pack(">QI", lsn, length) + payload) != crc:
        return None
    try:
        ops = json.loads(payload.decode("utf-8"))["ops"]
    except (ValueError, KeyError, UnicodeDecodeError):  # pragma: no cover
        return None  # CRC collision on garbage — treat as invalid bytes
    record = WalRecord(lsn=lsn, ops=ops, offset=offset, length=end - offset)
    return record, end


def _intact_record_after(data: bytes, offset: int) -> bool:
    """Is there any checksum-valid record strictly after *offset*?

    Distinguishes a torn tail (nothing valid follows — safe to truncate)
    from mid-log corruption (valid records follow the damage — replaying
    around the hole would fabricate history, so recovery must refuse).
    """
    search = offset + 1
    while True:
        index = data.find(_MAGIC, search)
        if index < 0:
            return False
        if _try_decode(data, index) is not None:
            return True
        search = index + 1


def read_wal(path: "Path | str") -> "tuple[list[WalRecord], int, int]":
    """Decode a WAL file front to back.

    Returns ``(records, good_length, truncated_bytes)`` where
    ``good_length`` is the byte length of the intact prefix and
    ``truncated_bytes`` how many torn-tail bytes follow it.  Raises
    :class:`~repro.errors.RecoveryError` when damage is followed by
    intact records (mid-log corruption) or LSNs are not strictly
    ascending.
    """
    path = Path(path)
    data = path.read_bytes() if path.exists() else b""
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        decoded = _try_decode(data, offset)
        if decoded is None:
            if _intact_record_after(data, offset):
                raise RecoveryError(
                    f"write-ahead log {path} is corrupt at byte {offset}: "
                    "damaged record followed by intact records (not a torn "
                    "tail) — refusing to replay around the hole"
                )
            return records, offset, len(data) - offset
        record, offset = decoded
        if records and record.lsn != records[-1].lsn + 1:
            raise RecoveryError(
                f"write-ahead log {path} has an LSN gap: record "
                f"{record.lsn} follows {records[-1].lsn}"
            )
        records.append(record)
    return records, offset, 0


# ----------------------------------------------------------------------- WAL
class WriteAheadLog:
    """An append-only log file with explicit durability bookkeeping.

    Tracks which byte offset has actually been fsynced
    (``durable_offset``) versus merely written, which is what lets
    :meth:`crash` simulate a process death honestly: everything past the
    last fsync is lost, optionally leaving a torn prefix of the first
    lost record — exactly what a kernel page-cache drop does.
    """

    def __init__(
        self,
        path: "Path | str",
        metrics: DurabilityMetrics,
        last_lsn: int = 0,
    ) -> None:
        self.path = Path(path)
        self.metrics = metrics
        self.last_lsn = last_lsn
        self._lock = threading.Lock()
        self._file = self.path.open("ab")
        self._durable_offset = self.path.stat().st_size
        #: serialized records written but not yet fsynced, oldest first
        self._unsynced: list[bytes] = []
        self.closed = False

    @property
    def records_since_sync(self) -> int:
        return len(self._unsynced)

    @property
    def durable_offset(self) -> int:
        return self._durable_offset

    def append(self, ops: "list[dict]") -> int:
        """Write one commit record; returns its LSN.  The record is in
        the OS page cache after this — call :meth:`sync` to make it
        durable."""
        with self._lock:
            lsn = self.last_lsn + 1
            record = encode_record(lsn, ops)
            self._file.write(record)
            self._file.flush()
            self.last_lsn = lsn
            self._unsynced.append(record)
            self.metrics.wal_records += 1
            self.metrics.wal_bytes += len(record)
            return lsn

    def sync(self) -> None:
        """fsync the log; every appended record is now crash-durable."""
        with self._lock:
            if self.closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self._durable_offset = self.path.stat().st_size
            self._unsynced.clear()
            self.metrics.fsyncs += 1

    def reset(self) -> None:
        """Truncate the file to zero length (post-checkpoint).  The LSN
        counter keeps counting — LSNs are unique per directory lifetime,
        which is what lets recovery skip stale records by comparison."""
        with self._lock:
            self._file.close()
            with self.path.open("wb") as handle:
                os.fsync(handle.fileno())
            self._file = self.path.open("ab")
            self._durable_offset = 0
            self._unsynced.clear()

    def crash(self, torn_bytes: int = 0, pending_ops: "list[dict] | None" = None) -> None:
        """Simulate process death: drop every byte not yet fsynced.

        ``torn_bytes > 0`` additionally writes that many bytes of the
        first *lost* record back — a torn write, which recovery must
        detect by checksum and truncate.  When nothing unsynced was on
        file (``always`` mode crashing before its append), the record
        that *was about to be written* (*pending_ops*) supplies the torn
        prefix.
        """
        with self._lock:
            if self.closed:
                return
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close best-effort
                pass
            os.truncate(self.path, self._durable_offset)
            if torn_bytes > 0:
                if self._unsynced:
                    source = self._unsynced[0]
                elif pending_ops is not None:
                    source = encode_record(self.last_lsn + 1, pending_ops)
                else:
                    source = b""
                if source:
                    with self.path.open("ab") as handle:
                        handle.write(source[: min(torn_bytes, len(source))])
            self._unsynced.clear()
            self.closed = True

    def close(self) -> None:
        """fsync and close (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self._durable_offset = self.path.stat().st_size
            self._unsynced.clear()
            self._file.close()
            self.closed = True


# ------------------------------------------------------------------ database
class DurableDatabase(Database):
    """A :class:`~repro.dbms.database.Database` whose committed state
    survives process death.

    Construct through :func:`open_durable`.  All the usual database API
    works unchanged; underneath, every committed mutation is logged to
    the directory's WAL before control returns, with the fsync policy:

    * ``"always"`` — fsync after every commit record (maximum safety,
      one fsync per DML statement);
    * ``"batch"`` — fsync every *wal_batch_records* records (the
      default; bounded loss window, near-``off`` throughput);
    * ``"off"`` — fsync only at checkpoint and close (a crash may lose
      everything since the last checkpoint, but never *corrupt*).

    Whatever the mode, the committed-prefix invariant holds: recovery
    restores a state content-identical to some prefix of the committed
    write history — fsync policy only moves *how recent* that prefix is
    guaranteed to be.

    A :class:`~repro.errors.SimulatedCrash` injected at the
    ``wal.append`` / ``wal.fsync`` / ``checkpoint.write`` fault sites
    kills the session: unsynced WAL bytes are dropped (torn write
    optional), the in-memory state is poisoned, and every further
    statement raises :class:`~repro.errors.RecoveryError` until the
    directory is reopened.
    """

    def __init__(
        self,
        directory: "str | Path",
        fsync_mode: str = "batch",
        wal_batch_records: int = 32,
        checkpoint_every_records: "int | None" = None,
        **database_kwargs: Any,
    ) -> None:
        if fsync_mode not in FSYNC_MODES:
            raise ValueError(
                f"fsync_mode must be one of {FSYNC_MODES}, got {fsync_mode!r}"
            )
        super().__init__(**database_kwargs)
        self.directory = Path(directory)
        self.fsync_mode = fsync_mode
        self.wal_batch_records = max(1, int(wal_batch_records))
        self.checkpoint_every_records = checkpoint_every_records
        self.durability = DurabilityMetrics()
        #: per-thread pending ops + statement-scope depth; thread-local
        #: because mutations fire on the executing thread and concurrent
        #: sessions must not interleave ops inside each other's records
        self._tls = threading.local()
        #: serializes WAL appends + checkpoints across threads
        self._commit_lock = threading.RLock()
        self._logging = False
        self._crashed = False
        self._records_since_checkpoint = 0
        self._checkpoint_seq = 0
        self._wal: "WriteAheadLog | None" = None

        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            self._recover(manifest_path)
        else:
            self._bootstrap()
        self.catalog.add_mutation_listener(self._on_mutation)
        self._logging = True

    # ------------------------------------------------------------ bootstrap
    def _bootstrap(self) -> None:
        """First open of a directory: write checkpoint 0 + manifest."""
        leftovers = [
            p.name
            for p in self.directory.iterdir()
            if p.name == WAL_NAME or p.name.startswith("checkpoint-")
        ]
        if leftovers:
            raise RecoveryError(
                f"{self.directory} has durability files {sorted(leftovers)} "
                "but no MANIFEST — refusing to silently reinitialize over "
                "what may be someone's data"
            )
        name = self._write_checkpoint_dir(0)
        self._write_manifest(name, lsn=0)
        self._wal = WriteAheadLog(
            self.directory / WAL_NAME, self.durability, last_lsn=0
        )

    # ------------------------------------------------------------- recovery
    def _recover(self, manifest_path: Path) -> None:
        self.durability.recoveries += 1
        try:
            manifest = json.loads(manifest_path.read_text())
            checkpoint_name = manifest["checkpoint"]
            checkpoint_lsn = int(manifest["lsn"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise RecoveryError(
                f"unreadable manifest at {manifest_path}: {exc}"
            ) from exc
        checkpoint_dir = self.directory / checkpoint_name
        if not checkpoint_dir.is_dir():
            raise RecoveryError(
                f"manifest points at missing checkpoint {checkpoint_name!r} "
                f"in {self.directory}"
            )
        try:
            restore_database_into(self, checkpoint_dir)
        except DatabaseError as exc:
            raise RecoveryError(
                f"checkpoint {checkpoint_name!r} does not restore: {exc}"
            ) from exc

        wal_path = self.directory / WAL_NAME
        records, good_length, truncated = read_wal(wal_path)
        last_lsn = checkpoint_lsn
        for record in records:
            if record.lsn <= checkpoint_lsn:
                # A crash between manifest swap and WAL truncation
                # leaves records the new checkpoint already contains.
                self.durability.recovery_skipped_records += 1
                last_lsn = max(last_lsn, record.lsn)
                continue
            if record.lsn != last_lsn + 1:
                raise RecoveryError(
                    f"write-ahead log {wal_path} is missing LSNs between "
                    f"{last_lsn} and {record.lsn}"
                )
            self._replay_ops(record.ops)
            last_lsn = record.lsn
            self.durability.recovery_replayed_records += 1
        if truncated:
            os.truncate(wal_path, good_length)
            _fsync_path(wal_path)
            self.durability.recovery_truncated_bytes += truncated
        try:
            self._checkpoint_seq = int(checkpoint_name.rsplit("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise RecoveryError(
                f"malformed checkpoint name {checkpoint_name!r}"
            ) from exc
        self._wal = WriteAheadLog(wal_path, self.durability, last_lsn=last_lsn)
        self._cleanup_stale(checkpoint_name)

    def _replay_ops(self, ops: "list[dict]") -> None:
        """Re-apply one record's mutations (logging is off here)."""
        for op in ops:
            try:
                self._replay_op(op)
            except RecoveryError:
                raise
            except Exception as exc:
                raise RecoveryError(
                    f"replaying {op.get('op')!r} on "
                    f"{op.get('name')!r} failed: {exc}"
                ) from exc

    def _replay_op(self, op: "dict") -> None:
        kind = op["op"]
        name = op["name"]
        if kind == "insert":
            self.catalog.table(name).insert_many(
                [tuple(row) for row in op["rows"]]
            )
        elif kind == "bulk_load":
            table = self.catalog.table(name)
            columns = {
                column.name: [row[i] for row in op["rows"]]
                for i, column in enumerate(table.schema.columns)
            }
            table.bulk_load_arrays(columns)
        elif kind == "truncate":
            self.catalog.table(name).truncate()
        elif kind == "create_table":
            columns = tuple(
                Column(cname, SqlType(ctype), nullable)
                for cname, ctype, nullable in op["columns"]
            )
            self.catalog.create_table(
                name,
                TableSchema(columns, op.get("primary_key")),
                partitions=op.get("partitions"),
                row_scale=op.get("row_scale", 1.0),
            )
        elif kind == "drop_table":
            self.catalog.drop_table(name, if_exists=True)
        elif kind == "create_view":
            statement = parse_statement(op["sql"])
            if not isinstance(statement, ast.Select):
                raise RecoveryError(
                    f"logged view {name!r} does not parse to a SELECT"
                )
            self.catalog.create_view(
                name, statement, or_replace=op.get("or_replace", False)
            )
        elif kind == "drop_view":
            self.catalog.drop_view(name, if_exists=True)
        else:
            raise RecoveryError(f"unknown WAL op {kind!r}")

    # ------------------------------------------------------------- logging
    def _state(self) -> Any:
        state = self._tls
        if not hasattr(state, "pending"):
            state.pending = []
            state.depth = 0
        return state

    def _on_mutation(self, op: str, name: str, payload: "dict") -> None:
        # Poisoning outranks the logging gate: a crashed session must
        # reject direct-API mutations (insert_rows on a live Table)
        # rather than silently applying them to memory unlogged.
        self._ensure_alive()
        if not self._logging:
            return
        state = self._state()
        state.pending.append({"op": op, "name": name, **payload})
        if state.depth == 0:
            # Direct API call (insert_rows, load_columns, create_table
            # outside SQL): the mutation is its own commit record.
            self._commit_pending(state)

    def _run_statement(self, statement: Any) -> Relation:
        """Group everything one statement commits into one WAL record,
        so an UPDATE's truncate + re-insert replays atomically."""
        self._ensure_alive()
        state = self._state()
        state.depth += 1
        try:
            return super()._run_statement(statement)
        finally:
            state.depth -= 1
            if state.depth == 0:
                # Commit even when the statement failed: the pending ops
                # describe mutations *actually applied* (a failed UPDATE
                # has already truncated), and the log must stay
                # equivalent to memory.
                self._commit_pending(state)

    def _commit_pending(self, state: Any) -> None:
        if not state.pending:
            return
        ops, state.pending = state.pending, []
        with self._commit_lock:
            assert self._wal is not None
            faults = self.faults
            try:
                if faults.enabled:
                    faults.fire(
                        "wal.append", lsn=self._wal.last_lsn + 1, ops=len(ops)
                    )
                self._wal.append(ops)
                self._records_since_checkpoint += 1
                if self.fsync_mode == "always":
                    self._sync_wal()
                elif (
                    self.fsync_mode == "batch"
                    and self._wal.records_since_sync >= self.wal_batch_records
                ):
                    self._sync_wal()
            except SimulatedCrash as crash:
                self._die(torn_bytes=crash.torn_bytes, pending_ops=ops)
                raise
            except BaseException:
                self._die()
                raise
            if (
                self.checkpoint_every_records is not None
                and self._records_since_checkpoint
                >= self.checkpoint_every_records
            ):
                self.checkpoint()

    def _sync_wal(self) -> None:
        faults = self.faults
        if faults.enabled:
            assert self._wal is not None
            faults.fire("wal.fsync", records=self._wal.records_since_sync)
        self._wal.sync()

    def _die(
        self,
        torn_bytes: int = 0,
        pending_ops: "list[dict] | None" = None,
    ) -> None:
        """Poison the session the way a process death would: unsynced
        WAL bytes are gone, and this object no longer accepts work."""
        if self._crashed:
            return
        self._crashed = True
        self._logging = False
        if self._wal is not None:
            try:
                self._wal.crash(torn_bytes=torn_bytes, pending_ops=pending_ops)
            except OSError:  # pragma: no cover - crash is best-effort
                pass

    def _ensure_alive(self) -> None:
        if self._crashed:
            raise RecoveryError(
                "this durable session crashed; reopen the directory with "
                "open_durable() to recover the committed prefix"
            )

    @property
    def crashed(self) -> bool:
        """Whether an injected crash has poisoned this session."""
        return self._crashed

    # ---------------------------------------------------------- checkpoint
    def _write_checkpoint_dir(self, seq: int) -> str:
        """Snapshot current state into ``checkpoint-<seq>`` atomically
        (build under a temp name, fsync everything, rename)."""
        name = f"checkpoint-{seq:06d}"
        tmp = self.directory / f"{name}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        save_database(self, tmp, fsync=True)
        final = self.directory / name
        if final.exists():  # pragma: no cover - seq collisions impossible
            shutil.rmtree(final)
        os.rename(tmp, final)
        _fsync_path(self.directory)
        return name

    def _write_manifest(self, checkpoint_name: str, lsn: int) -> None:
        manifest_path = self.directory / MANIFEST_NAME
        tmp = self.directory / (MANIFEST_NAME + ".tmp")
        payload = json.dumps(
            {"format": 1, "checkpoint": checkpoint_name, "lsn": lsn}
        )
        with tmp.open("w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, manifest_path)
        _fsync_path(self.directory)

    def _cleanup_stale(self, current_name: str) -> None:
        """Delete checkpoint directories and temp files the manifest no
        longer references.  Pure garbage collection: safe at any time,
        including immediately after a mid-checkpoint crash."""
        for path in self.directory.iterdir():
            stale_dir = (
                path.is_dir()
                and path.name.startswith("checkpoint-")
                and path.name != current_name
            )
            stale_tmp = path.name.endswith(".tmp")
            if stale_dir or stale_tmp:
                if path.is_dir():
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover
                        pass

    def checkpoint(self) -> Path:
        """Atomically checkpoint: snapshot → manifest swap → WAL reset.

        A crash before the manifest swap leaves the old checkpoint
        authoritative (the temp/renamed new one is garbage-collected on
        recovery); a crash after it leaves the new checkpoint with a
        stale WAL whose records recovery skips by LSN.
        """
        self._ensure_alive()
        with self._commit_lock:
            assert self._wal is not None
            faults = self.faults
            try:
                if faults.enabled:
                    faults.fire("checkpoint.write", stage="snapshot")
                name = self._write_checkpoint_dir(self._checkpoint_seq + 1)
                if faults.enabled:
                    faults.fire("checkpoint.write", stage="manifest")
                self._write_manifest(name, self._wal.last_lsn)
            except SimulatedCrash as crash:
                self._die(torn_bytes=crash.torn_bytes)
                raise
            except BaseException:
                self._die()
                raise
            self._checkpoint_seq += 1
            self._wal.reset()
            self._records_since_checkpoint = 0
            self.durability.checkpoints += 1
            self._cleanup_stale(name)
            return self.directory / name

    # ---------------------------------------------------------------- close
    def close(self) -> None:
        """fsync + close the WAL (unless crashed), then shut the engine
        down.  A cleanly closed directory recovers with zero replay
        loss even in ``fsync_mode="off"``."""
        if self._wal is not None and not self._crashed:
            self._wal.close()
        super().close()


def open_durable(
    directory: "str | Path",
    fsync_mode: str = "batch",
    wal_batch_records: int = 32,
    checkpoint_every_records: "int | None" = None,
    **database_kwargs: Any,
) -> DurableDatabase:
    """Open (or create) a crash-safe database rooted at *directory*.

    A fresh directory is initialized with an empty checkpoint and WAL; an
    existing one is *recovered* — last good checkpoint restored, WAL
    suffix replayed, torn tail truncated.  Extra keyword arguments go to
    the :class:`~repro.dbms.database.Database` constructor
    (``executor_workers``, ``faults``, ...).
    """
    return DurableDatabase(
        directory,
        fsync_mode=fsync_mode,
        wal_batch_records=wal_batch_records,
        checkpoint_every_records=checkpoint_every_records,
        **database_kwargs,
    )
