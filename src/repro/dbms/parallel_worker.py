"""Worker-process task bodies for the process-pool partition engine.

A :class:`~repro.dbms.engine.PartitionEngine` with ``kind="process"``
never pickles partition data.  The executor publishes each table to the
on-disk columnar format (:mod:`repro.dbms.columnar`) and ships plain
**descriptors** — ``(store root, table, version, partition id)`` plus a
picklable plan fragment (AST expressions, aggregate objects, position
maps).  :func:`run_task` runs in the pool worker: it opens the
partition's block file via ``mmap`` (cached per worker process),
recompiles the plan fragment with the *same* compile functions the
thread path uses (cached per statement fingerprint), folds the
partition, and returns only the partial state.

Every task body here mirrors its thread-path twin in
``repro.dbms.sql.executor`` line for line — same fault-site firing
order, same fold functions (``_fold_rows_into`` / ``_fold_vector_block``
/ the ``repro.core.factorized`` folds), same result tuple shape — so the
coordinator's partition-order merge produces bit-identical answers on
either executor.

Fault protocol: the engine ships each attempt a
:meth:`~repro.dbms.faults.FaultPlan.fork` snapshot; ``run_task``
evaluates fault sites against it and returns the counter deltas (for
**failed** attempts too) so the coordinator can absorb them — the same
per-``(spec, partition)`` hit counts a thread would have produced
against the shared plan.  Errors travel as values (``("err", exc,
meta)``), never as raised exceptions, so the deltas always make it
home; exceptions that cannot pickle are summarized into a typed
:class:`~repro.errors.ExecutionError`.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.core import factorized as fcore
from repro.dbms.columnar import BlockReader
from repro.dbms.expressions import (
    compile_row_expression,
    compile_vector_expression,
)
from repro.dbms.faults import NULL_FAULTS, FaultPlan
from repro.dbms.functions import SCALAR_BUILTINS
from repro.dbms.storage import BlockCacheStats
from repro.errors import ExecutionError

#: open block readers, keyed (root, table, version, partition) — one
#: mmap per block per worker process, reused across statements
_READERS: "OrderedDict[tuple, BlockReader]" = OrderedDict()
_MAX_READERS = 16

#: compiled plan fragments keyed by statement fingerprint; entries are
#: only stored for fault-free compiles (a faulty compile closes over
#: that one task's plan snapshot and must not outlive it)
_COMPILED: "OrderedDict[str, Any]" = OrderedDict()
_MAX_COMPILED = 64


class _Resolver:
    """``Binder.resolve`` stand-in backed by a shipped position map."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: "dict[tuple, int]") -> None:
        self._mapping = mapping

    def resolve(self, ref: Any) -> int:
        return self._mapping[(ref.table, ref.name.lower())]


class _Registry:
    """``Executor._scalar_registry`` stand-in over shipped scalar UDFs."""

    __slots__ = ("_udfs",)

    def __init__(self, udfs: "dict[str, Any]") -> None:
        self._udfs = udfs

    def _scalar_registry(self, name: str) -> "Callable[..., Any] | None":
        builtin = SCALAR_BUILTINS.get(name)
        if builtin is not None:
            return builtin
        return self._udfs.get(name.lower())


class _TableShim:
    """Bare-schema table stand-in for re-planning a vectorized select."""

    __slots__ = ("schema",)

    def __init__(self, schema: Any) -> None:
        self.schema = schema


class _CatalogShim:
    """The exact catalog surface ``plan_vectorized_select`` touches."""

    __slots__ = ("_name", "_table", "_udfs")

    def __init__(
        self, table_name: str, schema: Any, scalar_udfs: "dict[str, Any]"
    ) -> None:
        self._name = table_name.lower()
        self._table = _TableShim(schema)
        self._udfs = scalar_udfs

    def has_view(self, name: str) -> bool:
        return False

    def has_table(self, name: str) -> bool:
        return name.lower() == self._name

    def table(self, name: str) -> _TableShim:
        return self._table

    def scalar_udf(self, name: str) -> Any:
        return self._udfs.get(name.lower())


def _reader_for(block: "tuple[str, str, int, int]") -> "tuple[BlockReader, bool]":
    """The (cached) mmap reader for one published partition block.

    Returns ``(reader, already_open)`` — the flag feeds the task's
    cache-hit slot, the process-side analogue of the thread path's
    partition block-cache hit.
    """
    reader = _READERS.get(block)
    if reader is not None:
        _READERS.move_to_end(block)
        return reader, True
    root, table, version, pid = block
    path = os.path.join(root, table, f"v{version}", f"p{pid}.blk")
    reader = BlockReader(path)
    _READERS[block] = reader
    while len(_READERS) > _MAX_READERS:
        _, stale = _READERS.popitem(last=False)
        stale.close()
    return reader, False


def _cache_compiled(key: str, value: Any) -> None:
    _COMPILED[key] = value
    while len(_COMPILED) > _MAX_COMPILED:
        _COMPILED.popitem(last=False)


def worker_init() -> None:
    """Pool-worker initializer: pay the heavy imports at spawn time.

    Runs in each child before it serves tasks, so a freshly spawned
    worker never charges numpy/module import time to a real task's
    wall clock (and therefore to its timeout budget).
    """
    import repro.dbms.sql.executor  # noqa: F401 - imported for side effect
    import repro.dbms.sql.vectorized  # noqa: F401


def warm_worker(seconds: float = 0.0) -> int:
    """Warm-up task submitted at pool creation (see the engine).

    The optional sleep keeps one fast child from draining every
    warm-up before its siblings finish spawning, so creation leaves
    roughly ``max_workers`` children imported and ready.
    """
    if seconds:
        time.sleep(seconds)
    return os.getpid()


def _portable_error(exc: BaseException) -> BaseException:
    """*exc* if it survives a pickle round trip, else a summary that does."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        text = f"{type(exc).__name__}: {exc}"
        return ExecutionError(text[:500])


def run_task(
    payload: "dict[str, Any]",
    plan: "FaultPlan | None",
    partition: int,
    attempt: int,
) -> "tuple[str, Any, dict[str, Any]]":
    """Run one partition task in a pool worker process.

    Returns ``("ok", result, meta)`` or ``("err", exception, meta)``;
    ``meta`` always carries the worker pid, the attempt's wall seconds,
    and — when a fault plan rode along — the counter deltas the attempt
    produced, so the coordinator can absorb them whether the attempt
    succeeded or not.
    """
    started = time.perf_counter()
    faults: Any = plan if plan is not None else NULL_FAULTS
    baseline = plan.counter_snapshot() if plan is not None else None
    try:
        if faults.enabled:
            faults.fire("engine.task", partition=partition, attempt=attempt)
        result = _dispatch(payload, faults, partition)
        status: str = "ok"
        value: Any = result
    except Exception as exc:  # noqa: BLE001 - errors travel as values
        status = "err"
        value = _portable_error(exc)
    meta: "dict[str, Any]" = {
        "pid": os.getpid(),
        "seconds": time.perf_counter() - started,
    }
    if plan is not None and baseline is not None:
        hits, tripped = plan.counter_deltas(*baseline)
        meta["hits"] = hits
        meta["tripped"] = tripped
    return status, value, meta


def _dispatch(
    payload: "dict[str, Any]", faults: Any, partition: int
) -> Any:
    kind = payload["kind"]
    reader, already_open = _reader_for(payload["block"])
    # The cache-hit flag ships from the coordinator ("was this table
    # version already published when the statement started?") so the
    # reported hit/miss totals are deterministic at any worker count —
    # per-process reader caches depend on task scheduling and are not.
    cached = payload.get("cached", already_open)
    if kind == "agg-row":
        return _run_agg_row(payload, faults, partition, reader)
    if kind == "agg-vector":
        return _run_agg_vector(payload, faults, partition, reader, cached)
    if kind == "project":
        return _run_project(payload, faults, partition, reader, cached)
    if kind == "fact-fold":
        return _run_fact_fold(payload, faults, partition, reader)
    raise ExecutionError(f"unknown process-task kind {kind!r}")


# ------------------------------------------------------------ aggregate row
def _compiled_agg_row(payload: "dict[str, Any]") -> Any:
    key = payload["fingerprint"]
    cached = _COMPILED.get(key)
    if cached is not None:
        return cached
    # Imported here (not at module top) to keep the worker import cheap
    # and avoid import cycles: executor imports engine imports this.
    from repro.dbms.sql.executor import _AggregateSpec

    resolver = _Resolver(payload["resolve"])
    registry = _Registry(payload["scalar_udfs"])
    aggregates = [
        _AggregateSpec(call, aggregate, resolver, registry)
        for call, aggregate in zip(payload["calls"], payload["aggregates"])
    ]
    group_fns = [
        compile_row_expression(
            expr, resolver.resolve, registry._scalar_registry
        )
        for expr in payload["group_exprs"]
    ]
    where = payload["where"]
    where_fn = (
        compile_row_expression(
            where, resolver.resolve, registry._scalar_registry
        )
        if where is not None
        else None
    )
    compiled = (aggregates, group_fns, where_fn)
    _cache_compiled(key, compiled)
    return compiled


def _run_agg_row(
    payload: "dict[str, Any]",
    faults: Any,
    partition: int,
    reader: BlockReader,
) -> "tuple[dict, int, float, float]":
    from repro.dbms.sql.executor import _fold_rows_into

    scan_start = time.perf_counter()
    if faults.enabled:
        faults.fire("partition.scan", partition=partition)
    rows = reader.row_tuples()
    aggregates, group_fns, where_fn = _compiled_agg_row(payload)
    accumulate_start = time.perf_counter()
    local, folded = _fold_rows_into(rows, aggregates, group_fns, where_fn)
    done = time.perf_counter()
    return (
        local,
        folded,
        accumulate_start - scan_start,
        done - accumulate_start,
    )


# --------------------------------------------------------- aggregate vector
def _compiled_agg_vector(payload: "dict[str, Any]") -> Any:
    key = payload["fingerprint"]
    cached = _COMPILED.get(key)
    if cached is not None:
        return cached
    from repro.dbms.sql.executor import _AggregateSpec

    resolver = _Resolver(payload["resolve"])
    registry = _Registry(payload["scalar_udfs"])
    matrix = _Resolver(payload["matrix_map"])
    aggregates = [
        _AggregateSpec(call, aggregate, resolver, registry)
        for call, aggregate in zip(payload["calls"], payload["aggregates"])
    ]
    for spec in aggregates:
        spec.prepare_vector(matrix.resolve)
    group_vector_fns = [
        compile_vector_expression(expr, matrix.resolve)
        for expr in payload["group_exprs"]
    ]
    compiled = (aggregates, group_vector_fns)
    _cache_compiled(key, compiled)
    return compiled


def _run_agg_vector(
    payload: "dict[str, Any]",
    faults: Any,
    partition: int,
    reader: BlockReader,
    cache_hit: bool,
) -> "tuple[dict, int, float, float, BlockCacheStats]":
    from repro.dbms.sql.executor import _fold_vector_block

    scan_start = time.perf_counter()
    if faults.enabled:
        faults.fire("block.materialize", partition=partition)
    block = reader.float_matrix(payload["positions"])
    if faults.enabled:
        for site, udf_name in payload["fused"]:
            faults.fire(site, partition=partition, udf=udf_name)
    aggregates, group_vector_fns = _compiled_agg_vector(payload)
    accumulate_start = time.perf_counter()
    local = _fold_vector_block(
        block, aggregates, payload["group_exprs"], group_vector_fns
    )
    done = time.perf_counter()
    return (
        local,
        block.shape[0],
        accumulate_start - scan_start,
        done - accumulate_start,
        # mmap readers never evict or spill; the hit flag is the
        # worker-side reader-cache outcome
        BlockCacheStats(hit=cache_hit),
    )


# ------------------------------------------------------ vectorized project
def _compiled_project(payload: "dict[str, Any]", faults: Any) -> Any:
    cacheable = not faults.enabled
    key = payload["fingerprint"]
    if cacheable:
        cached = _COMPILED.get(key)
        if cached is not None:
            return cached
    from repro.dbms.sql.vectorized import plan_vectorized_select

    catalog = _CatalogShim(
        payload["table_name"], payload["schema"], payload["scalar_udfs"]
    )
    decision = plan_vectorized_select(catalog, payload["select"], faults)
    if decision.plan is None:
        raise ExecutionError(
            "process worker could not re-plan vectorized select: "
            f"{decision.reason}"
        )
    if cacheable:
        _cache_compiled(key, decision.plan)
    return decision.plan


def _run_project(
    payload: "dict[str, Any]",
    faults: Any,
    partition: int,
    reader: BlockReader,
    cache_hit: bool,
) -> "tuple[list, int, float, float, BlockCacheStats]":
    from repro.dbms.sql.vectorized import RawColumnItem

    scan_start = time.perf_counter()
    if faults.enabled:
        faults.fire("block.materialize", partition=partition)
    plan = _compiled_project(payload, faults)
    block = reader.float_matrix(plan.positions)
    project_start = time.perf_counter()
    keep_list: "list[int] | None" = None
    if plan.where_fn is None:
        sub = block
    else:
        keep = np.flatnonzero(plan.where_fn(block) == 1.0)
        sub = block[keep]
        keep_list = keep.tolist()
    columns: "list[list[Any]]" = []
    for item in plan.items:
        if isinstance(item, RawColumnItem):
            source = reader.column_values(item.position)
            if keep_list is None:
                columns.append(list(source))
            else:
                columns.append([source[i] for i in keep_list])
        else:
            values = item.fn(sub)
            if item.integer_result:
                columns.append(
                    [None if v != v else int(v) for v in values.tolist()]
                )
            else:
                # v != v is the NaN test; NaN carried NULL.
                columns.append(
                    [None if v != v else v for v in values.tolist()]
                )
    out = list(zip(*columns)) if columns else []
    done = time.perf_counter()
    return (
        out,
        block.shape[0],
        project_start - scan_start,
        done - project_start,
        BlockCacheStats(hit=cache_hit),
    )


# --------------------------------------------------------- factorized fold
def _run_fact_fold(
    payload: "dict[str, Any]",
    faults: Any,
    partition: int,
    reader: BlockReader,
) -> "tuple[Any, int, float, float]":
    scan_start = time.perf_counter()
    if faults.enabled:
        faults.fire("partition.scan", partition=partition)
    rows = reader.row_tuples()
    fire_site = payload.get("fire_site")
    if fire_site is not None and faults.enabled:
        faults.fire(fire_site, partition=partition, udf=payload.get("fire_udf"))
    fold_start = time.perf_counter()
    fold = payload["fold"]
    tag = fold[0]
    if tag == "dim":
        partial = fcore.fold_dim_partition(rows, fold[1], fold[2])
    elif tag == "summary":
        partial = fcore.fold_summary_fact_partition(
            rows, fold[1], fold[2], fold[3], fold[4]
        )
    elif tag == "fused":
        partial = fcore.fold_fused_fact_partition(
            rows, fold[1], fold[2], fold[3], fold[4]
        )
    elif tag == "builtins":
        partial = fcore.fold_builtin_fact_partition(
            rows, fold[1], fold[2], fold[3], fold[4]
        )
    else:
        raise ExecutionError(f"unknown factorized fold {tag!r}")
    done = time.perf_counter()
    return partial, len(rows), fold_start - scan_start, done - fold_start
