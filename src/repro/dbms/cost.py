"""Deterministic simulated-time accounting for the DBMS substrate.

The paper's evaluation ran on a 2007 Teradata system (20 parallel AMP
threads) and a 1.6 GHz workstation.  We cannot rerun that hardware, so
the engine executes every query for real (numeric results are exact)
while *time* is accounted by this module: each scan, parse, spool write,
UDF call, parameter transfer and arithmetic update charges simulated
seconds against a :class:`SimulatedClock`.

The charging rules encode the mechanisms the paper identifies as the
drivers of its curves:

* table scans cost ``rows × (row overhead + width × value cost)``,
  divided across the AMPs — the dominant linear-in-``n`` term;
* a SQL aggregate query pays per select-list *term* at parse/spool time
  (the ``1 + d + d²``-term query of Section 3.4 is what makes plain SQL
  superlinear in ``d``: the wide one-row spool) and per expression
  *node* per row at evaluation time (interpreted arithmetic);
* aggregate UDFs pay a per-row invocation overhead, a per-parameter
  transfer cost (list passing) or a per-character pack/parse cost
  (string passing), and a small per multiply-add update cost — cheap
  enough that ``d²`` in-memory operations barely show, exactly as
  Section 4.2 observes;
* scalar (scoring) UDFs run in the projection pipeline and are far
  cheaper per call than the aggregate machinery, as [17] measures;
* GROUP BY pays a hash per row and a graded spill multiplier as the
  combined group state presses on the 64 KB heap segment (Table 5's
  climb at k=16 and jump at k=32 with the diagonal struct).

All default constants were fitted against the paper's Tables 1-5 and
Figures 1-5; the fit, per experiment, is documented in
:mod:`repro.bench.calibration` (which also asserts the resulting
qualitative shapes).

Tables may carry a ``row_scale`` factor: the storage holds ``n / scale``
physical rows but every per-row charge is multiplied by the scale, so
benchmarks can simulate the paper's 1.6M-row data sets while computing
on a reduced sample.  Every per-row charge is linear, so the accounting
is exact.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field, replace
from typing import Iterator


@dataclass
class CostParameters:
    """Charging constants, all in simulated seconds (or bytes where noted).

    Per-row constants are *pre-parallelism*: the charge for one row on
    one worker; the model divides by ``amps`` where work is spread.
    """

    #: number of parallel AMP threads the server divides scan work across
    amps: int = 20

    # ------------------------------------------------------------------ scans
    #: per-row overhead of reading a row from disk
    scan_row: float = 60.0e-6
    #: additional per-value cost of reading one column of a row
    scan_value: float = 2.0e-6

    # ------------------------------------------------------------ SQL queries
    #: fixed statement overhead (optimizer, dispatch)
    sql_statement_overhead: float = 0.2
    #: parse/plan cost per select-list term (the 1+d+d² query pays d² here)
    sql_parse_per_term: float = 8.0e-3
    #: creating one column of the result/spool relation (the wide one-row
    #: result of the long query is what hurts SQL at high d)
    sql_spool_cell: float = 8.0e-3
    #: interpreted evaluation of one expression AST node for one row
    sql_eval_node: float = 0.28e-6
    #: writing one cell of a multi-row intermediate spool (joins, derived
    #: tables); tiny — model tables are small and stay in memory
    sql_spool_row_cell: float = 1.0e-8

    # ---------------------------------------------------------- aggregate UDF
    #: per-row overhead of invoking an aggregate UDF (row dispatch into
    #: the protected UDF execution context)
    udf_row_overhead: float = 482.0e-6
    #: transferring one scalar parameter on the run-time stack (list style)
    udf_param: float = 3.0e-6
    #: packing/parsing one character of a string-passed vector
    udf_string_char: float = 1.17e-6
    #: one multiply-add inside the aggregate update loop
    udf_arith_op: float = 0.19e-6
    #: merging one accumulated value during partial-result aggregation
    udf_merge_value: float = 1.2e-5
    #: packing one value of the returned (n, L, Q) payload string
    udf_return_value: float = 1.1e-4

    # ------------------------------------------------------------- scalar UDF
    #: per-call overhead of a scalar UDF in the projection pipeline
    scalar_udf_overhead: float = 12.0e-6
    #: per-parameter transfer for a scalar UDF call
    scalar_udf_param: float = 0.02e-6
    #: one arithmetic operation inside a scalar UDF
    scalar_udf_arith: float = 0.15e-6

    # ----------------------------------------------------------------- groups
    #: hashing a row to its group during GROUP BY aggregation
    groupby_hash_row: float = 0.55e-6
    #: the single heap segment available to an aggregate UDF (paper: 64 KB)
    heap_segment_bytes: int = 65536
    #: aggregation-work multiplier when group state fills over half the
    #: segment (cache pressure — Table 5's climb at k=16)
    groupby_pressure_factor: float = 1.35
    #: multiplier once group state exceeds the whole segment and spills
    #: (Table 5's jump at k=32)
    groupby_spill_factor: float = 5.5

    # ------------------------------------------------------------------- DML
    #: inserting one value (bulk load path)
    insert_value: float = 0.30e-6
    #: per-comparison cost in ORDER BY sorting
    sort_compare: float = 0.35e-6

    def scaled(self, **overrides: float) -> "CostParameters":
        """A copy with some constants replaced (used by ablation benches)."""
        return replace(self, **overrides)


class SimulatedClock:
    """Accumulates simulated seconds charged by the cost model."""

    def __init__(self) -> None:
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Total simulated seconds charged since the last reset."""
        return self._elapsed

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._elapsed += seconds

    def reset(self) -> None:
        self._elapsed = 0.0

    @contextlib.contextmanager
    def span(self) -> Iterator["_Span"]:
        """Measure the simulated time charged inside a ``with`` block."""
        span = _Span(self, self._elapsed)
        yield span
        span.finish(self._elapsed)


class _Span:
    """The simulated-seconds delta across a :meth:`SimulatedClock.span`."""

    def __init__(self, clock: SimulatedClock, start: float) -> None:
        self._clock = clock
        self._start = start
        self._end: float | None = None

    def finish(self, end: float) -> None:
        self._end = end

    @property
    def seconds(self) -> float:
        end = self._end if self._end is not None else self._clock.elapsed
        return end - self._start


@dataclass
class CostModel:
    """Translates engine operations into charges on a simulated clock."""

    params: CostParameters = field(default_factory=CostParameters)
    clock: SimulatedClock = field(default_factory=SimulatedClock)

    # ------------------------------------------------------------------ scans
    def charge_scan(self, rows: float, width: int) -> None:
        """A full scan of *rows* rows reading *width* columns each.

        Scan work divides across the AMPs (each reads its own horizontal
        partition in parallel), which is what gives the 20-way server its
        edge over the single-threaded workstation.
        """
        per_row = self.params.scan_row + width * self.params.scan_value
        self.clock.charge(rows * per_row / self.params.amps)

    # ------------------------------------------------------------ SQL queries
    def charge_sql_statement(self, select_terms: int) -> None:
        """Parse/plan cost of a statement with *select_terms* select items."""
        self.clock.charge(
            self.params.sql_statement_overhead
            + select_terms * self.params.sql_parse_per_term
        )

    def charge_sql_evaluation(self, rows: float, nodes: float) -> None:
        """Interpreted evaluation of expressions totalling *nodes* AST
        nodes, once per row."""
        self.clock.charge(
            rows * nodes * self.params.sql_eval_node / self.params.amps
        )

    def charge_spool_result(self, rows: float, width: int) -> None:
        """Creating the result relation: per *column* (the paper blames
        SQL's superlinear growth in d on building the 1 + d + d²-column
        result table) plus a per-cell share for multi-row results."""
        self.clock.charge(width * self.params.sql_spool_cell)
        if rows > 1:
            self.charge_spool_rows(rows - 1, width)

    def charge_spool_rows(self, rows: float, width: int) -> None:
        """Writing a multi-row intermediate spool (join output, derived
        table)."""
        per_row = self.params.sql_spool_row_cell * width
        self.clock.charge(rows * per_row / self.params.amps)

    # ---------------------------------------------------------- aggregate UDF
    def charge_udf_rows(
        self,
        rows: float,
        list_params: int = 0,
        string_chars: float = 0.0,
        arith_ops: float = 0.0,
    ) -> None:
        """Per-row aggregate-UDF work over *rows* rows, across AMPs.

        *list_params* is the number of scalar parameters transferred per
        call; *string_chars* the packed-string length per call;
        *arith_ops* the multiply-adds per call (``d`` for a diagonal Q,
        ``d(d+1)/2`` triangular, ``d²`` full, plus the L and min/max
        updates).
        """
        per_row = (
            self.params.udf_row_overhead
            + list_params * self.params.udf_param
            + string_chars * self.params.udf_string_char
            + arith_ops * self.params.udf_arith_op
        )
        self.clock.charge(rows * per_row / self.params.amps)

    def charge_udf_string_transfer(self, rows: float, string_chars: float) -> None:
        """The pack/parse cost of string-passed parameters alone.

        Charged separately so the GROUP BY spill multiplier (which
        models state management, not parsing) never scales it.
        """
        self.clock.charge(
            rows * string_chars * self.params.udf_string_char / self.params.amps
        )

    def charge_udf_merge(self, partials: int, state_values: int) -> None:
        """Merging *partials* per-AMP states of *state_values* values each."""
        self.clock.charge(partials * state_values * self.params.udf_merge_value)

    def charge_udf_return(self, state_values: int) -> None:
        """Packing the final (n, L, Q) payload string returned to the user."""
        self.clock.charge(state_values * self.params.udf_return_value)

    # ------------------------------------------------------------- scalar UDF
    def charge_scalar_udf_rows(
        self, rows: float, params: int, arith_ops: float
    ) -> None:
        """Per-row scoring-UDF calls in the projection pipeline."""
        per_row = (
            self.params.scalar_udf_overhead
            + params * self.params.scalar_udf_param
            + arith_ops * self.params.scalar_udf_arith
        )
        self.clock.charge(rows * per_row / self.params.amps)

    # ----------------------------------------------------------------- groups
    def charge_groupby(self, rows: float) -> None:
        """Hashing *rows* rows to their groups."""
        self.clock.charge(rows * self.params.groupby_hash_row / self.params.amps)

    def groupby_spill_multiplier(self, groups: int, state_bytes: int) -> float:
        """Aggregation-work multiplier as group state presses on the heap.

        Below half the 64 KB segment the penalty grows gently with the
        fill ratio (the paper's slow k=1..8 growth).  Between half and
        the whole segment: cache pressure (the climb at k=16).  Over the
        segment: the state spills and per-row work jumps (the ~4× jump
        at k=32)."""
        ratio = groups * state_bytes / self.params.heap_segment_bytes
        if ratio > 1.0:
            return self.params.groupby_spill_factor
        if ratio > 0.5:
            return self.params.groupby_pressure_factor
        return 1.0 + 0.25 * ratio

    # ------------------------------------------------------------------- DML
    def charge_insert(self, rows: float, width: int) -> None:
        self.clock.charge(rows * width * self.params.insert_value)

    def charge_sort(self, rows: float) -> None:
        """An ORDER BY over *rows* rows (n log n comparisons)."""
        if rows <= 1:
            return
        comparisons = rows * math.log2(rows)
        self.clock.charge(comparisons * self.params.sort_compare / self.params.amps)
