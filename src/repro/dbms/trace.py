"""Hierarchical span tracing for query execution (EXPLAIN ANALYZE).

:mod:`repro.dbms.metrics` answers "how long did each *stage* take?" with
four flat per-statement totals.  This module answers the finer question
EXPLAIN ANALYZE needs: "where inside the plan did the time go?" — a tree
of :class:`Span` records, one per plan operator and one per partition
task, each carrying wall-clock seconds and free-form attributes (row
counts, partition ids, block-cache hits, worker thread names).

Tracing is **opt-in per statement** and free when off.  The executor
holds :data:`NULL_TRACER` by default; its ``span()`` returns one shared
no-op context manager, so the non-EXPLAIN hot path allocates no span
objects, no generators and no dicts.  Only ``EXPLAIN ANALYZE`` swaps in
a real :class:`Tracer` for the duration of the statement.

Threading contract (mirrors :class:`~repro.dbms.metrics.StageTimer`):
the :class:`Tracer` stack is touched from the coordinating thread only.
Engine worker tasks never see the tracer — they build private
:class:`Span` objects from their own ``perf_counter`` readings and
return them with their partial results; the coordinator attaches them
with :meth:`Tracer.attach` while merging, in partition order.  Because a
task's span seconds are computed from the *same* timestamps the task
reports to :class:`~repro.dbms.metrics.QueryMetrics`, the per-operator
span sums reconcile with the stage totals exactly, not approximately.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One timed region of query execution.

    ``seconds`` is wall-clock time on this machine (never simulated
    cost); ``attributes`` carries operator-specific measurements such as
    ``rows``, ``partition`` or ``cached``.
    """

    name: str
    seconds: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def total_seconds(self, name: str) -> float:
        """Sum of ``seconds`` over all spans named *name* in this subtree.

        Summation follows tree order (= partition/attach order), so the
        floating-point total is reproducible and matches the order in
        which :class:`~repro.dbms.metrics.QueryMetrics` summed the same
        task-reported values.
        """
        total = 0.0
        for span in self.walk():
            if span.name == name:
                total += span.seconds
        return total

    def render(self, indent: int = 0) -> list[str]:
        """Human-readable lines for this subtree (EXPLAIN ANALYZE text)."""
        attrs = "".join(
            f" {key}={_format_value(value)}"
            for key, value in self.attributes.items()
        )
        lines = [
            f"{'  ' * indent}{self.name}: "
            f"{self.seconds * 1e3:.3f} ms{attrs}"
        ]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class _NullSpanContext:
    """The shared do-nothing context manager returned by NullTracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracing disabled: every call is a no-op with zero allocation.

    ``span()`` hands back one module-level context manager instance, so
    executing a statement without EXPLAIN ANALYZE never creates span
    objects (asserted by ``tests/test_explain.py``).
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_CONTEXT

    def attach(self, spans: "list[Span] | Span") -> None:
        return None

    @property
    def root(self) -> None:
        return None

    @property
    def current(self) -> None:
        return None


#: the executor's default tracer — one shared instance, nothing allocated
NULL_TRACER = NullTracer()


class Tracer:
    """Collects one statement's span tree on the coordinating thread."""

    __slots__ = ("_root", "_stack")
    enabled = True

    def __init__(self, root_name: str = "statement") -> None:
        self._root = Span(root_name)
        self._stack: list[Span] = [self._root]

    @property
    def root(self) -> Span:
        return self._root

    @property
    def current(self) -> Span:
        """The innermost open span (the root between operators).

        The executor's degradation path uses this to find — and mark
        ``failed`` — the span a vectorized attempt left behind before
        the row path opens its replacement span.
        """
        return self._stack[-1]

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child span of the innermost open span and time it.

        The measured wall clock can be overwritten before exit (see
        :class:`~repro.dbms.metrics.StageTimer`'s span syncing) by
        setting ``span.seconds`` to a non-zero value inside the block —
        the context manager only fills it when still zero, so a stage
        timer and its span always report the identical float.
        """
        span = Span(name)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            if span.seconds == 0.0:
                span.seconds = time.perf_counter() - started
            self._stack.pop()

    def attach(self, spans: "list[Span] | Span") -> None:
        """Adopt externally built spans (worker-task results) as children
        of the innermost open span, preserving the given order."""
        if isinstance(spans, Span):
            self._stack[-1].children.append(spans)
        else:
            self._stack[-1].children.extend(spans)
