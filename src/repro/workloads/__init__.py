"""Synthetic workloads matching the paper's experimental data sets."""

from repro.workloads.generator import (
    DatasetSample,
    MixtureSpec,
    SyntheticDataGenerator,
    load_dataset,
)

__all__ = [
    "DatasetSample",
    "MixtureSpec",
    "SyntheticDataGenerator",
    "load_dataset",
]
