"""Synthetic data generation (paper, Section 4 "Data Sets").

The paper's experiments use mixtures of normal distributions stored as
tables: k = 16 components with means in [0, 100] and standard deviation
around 10 per dimension, plus about 15% uniformly distributed noise
points.  This module reproduces that scheme with a seeded generator and
loads the result into the DBMS in the ``X(i, x1..xd[, y])`` layout.

For regression experiments a dependent variable y = βᵀx + β₀ + ε is
added with a known random β so fitted coefficients can be validated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import WorkloadError


@dataclass(frozen=True)
class MixtureSpec:
    """Parameters of the Gaussian-mixture workload."""

    d: int
    k: int = 16
    mean_low: float = 0.0
    mean_high: float = 100.0
    sigma: float = 10.0
    noise_fraction: float = 0.15
    seed: int = 42

    def __post_init__(self) -> None:
        if self.d < 1:
            raise WorkloadError(f"d must be >= 1, got {self.d}")
        if self.k < 1:
            raise WorkloadError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.noise_fraction < 1.0:
            raise WorkloadError(
                f"noise fraction must be in [0, 1), got {self.noise_fraction}"
            )
        if self.mean_high <= self.mean_low:
            raise WorkloadError("mean_high must exceed mean_low")
        if self.sigma <= 0:
            raise WorkloadError(f"sigma must be positive, got {self.sigma}")


@dataclass
class DatasetSample:
    """One generated sample: ids, points, mixture labels, optional target."""

    ids: np.ndarray
    X: np.ndarray
    labels: np.ndarray
    y: np.ndarray | None = None
    true_beta: np.ndarray | None = None
    true_intercept: float | None = None

    @property
    def n(self) -> int:
        return int(self.X.shape[0])

    @property
    def d(self) -> int:
        return int(self.X.shape[1])


class SyntheticDataGenerator:
    """Draws samples from the paper's mixture-plus-noise distribution."""

    def __init__(self, spec: MixtureSpec) -> None:
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        self.component_means = rng.uniform(
            spec.mean_low, spec.mean_high, size=(spec.k, spec.d)
        )
        # "standard deviation around 10": jitter each component's sigma.
        self.component_sigmas = spec.sigma * rng.uniform(
            0.8, 1.2, size=(spec.k, spec.d)
        )
        self._rng = rng

    def generate(self, n: int) -> DatasetSample:
        """Draw n points; label 0 marks noise, 1..k the mixture component."""
        if n < 1:
            raise WorkloadError(f"n must be >= 1, got {n}")
        spec = self.spec
        rng = self._rng
        labels = rng.integers(1, spec.k + 1, size=n)
        noise_mask = rng.random(n) < spec.noise_fraction
        labels[noise_mask] = 0
        X = np.empty((n, spec.d))
        for j in range(1, spec.k + 1):
            members = labels == j
            count = int(members.sum())
            if count:
                X[members] = rng.normal(
                    self.component_means[j - 1],
                    self.component_sigmas[j - 1],
                    size=(count, spec.d),
                )
        noise_count = int(noise_mask.sum())
        if noise_count:
            span = spec.mean_high - spec.mean_low
            X[noise_mask] = rng.uniform(
                spec.mean_low - 0.1 * span,
                spec.mean_high + 0.1 * span,
                size=(noise_count, spec.d),
            )
        ids = np.arange(1, n + 1)
        return DatasetSample(ids, X, labels)

    def with_target(self, sample: DatasetSample, noise_sigma: float = 5.0) -> DatasetSample:
        """Attach y = β₀ + βᵀx + ε with a known random β."""
        rng = np.random.default_rng(self.spec.seed + 1)
        beta = rng.normal(0.0, 1.0, size=sample.d)
        intercept = float(rng.normal(0.0, 10.0))
        y = intercept + sample.X @ beta + rng.normal(0.0, noise_sigma, sample.n)
        sample.y = y
        sample.true_beta = beta
        sample.true_intercept = intercept
        return sample


def load_dataset(
    db: Database,
    name: str,
    n: int,
    spec: MixtureSpec,
    with_y: bool = False,
    row_scale: float = 1.0,
) -> DatasetSample:
    """Generate a sample and load it as table ``name(i, x1..xd[, y])``.

    *row_scale* stores ``n`` physical rows but makes the cost model treat
    the table as ``n × row_scale`` rows (benchmark scaling).
    """
    generator = SyntheticDataGenerator(spec)
    sample = generator.generate(n)
    if with_y:
        generator.with_target(sample)
    if db.catalog.has_table(name):
        db.drop_table(name)
    schema = dataset_schema(spec.d, with_y=with_y)
    db.create_table(name, schema, row_scale=row_scale)
    columns: dict[str, np.ndarray] = {"i": sample.ids}
    for index, dim in enumerate(dimension_names(spec.d)):
        columns[dim] = sample.X[:, index]
    if with_y:
        columns["y"] = sample.y
    db.load_columns(name, columns)
    return sample
