"""The external "C++" analysis tool.

Simulates the workstation program of the paper's experiments: it reads a
flat CSV file (produced by the ODBC export simulator), computes
(n, L, Q) in a single pass keeping both matrices in memory, and builds
models from the summary.  The scan is performed for real — chunked so
memory stays bounded, with per-chunk summaries merged exactly like the
UDF's partial states — while *time* comes from the workstation cost
model, charged for the nominal row count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import ExportError
from repro.external.workstation import WorkstationCostModel


@dataclass(frozen=True)
class NlqScanReport:
    """Result of one flat-file (n, L, Q) pass."""

    stats: SummaryStatistics
    physical_rows: int
    nominal_rows: float
    simulated_seconds: float


class CppAnalysisTool:
    """One-pass flat-file analytics with workstation timing."""

    def __init__(
        self,
        workstation: WorkstationCostModel | None = None,
        chunk_rows: int = 8192,
    ) -> None:
        self.workstation = workstation or WorkstationCostModel()
        self.chunk_rows = chunk_rows

    def compute_nlq(
        self,
        path: "str | Path",
        columns: "list[str] | None" = None,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
        row_scale: float = 1.0,
    ) -> NlqScanReport:
        """Scan the CSV at *path* once and return (n, L, Q).

        *columns* selects which header columns are the dimensions
        (default: every column except one named ``i``, the point id).
        *row_scale* is the bench scale factor: time is charged for
        ``physical rows × scale``.
        """
        path = Path(path)
        try:
            with path.open() as handle:
                header = handle.readline().strip()
                if not header:
                    raise ExportError(f"{path} is empty")
                names = header.split(",")
                if columns is None:
                    positions = [
                        index
                        for index, name in enumerate(names)
                        if name.lower() != "i"
                    ]
                else:
                    missing = [c for c in columns if c not in names]
                    if missing:
                        raise ExportError(
                            f"{path} lacks columns {missing}; header has {names}"
                        )
                    positions = [names.index(c) for c in columns]
                d = len(positions)
                stats = SummaryStatistics.zeros(d, matrix_type)
                physical = 0
                chunk: list[list[float]] = []
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    pieces = line.split(",")
                    chunk.append([float(pieces[p]) for p in positions])
                    physical += 1
                    if len(chunk) >= self.chunk_rows:
                        stats = stats.merge(
                            SummaryStatistics.from_matrix(
                                np.asarray(chunk), matrix_type
                            )
                        )
                        chunk = []
                if chunk:
                    stats = stats.merge(
                        SummaryStatistics.from_matrix(np.asarray(chunk), matrix_type)
                    )
        except OSError as exc:
            raise ExportError(f"cannot read {path}: {exc}") from exc
        except ValueError as exc:
            raise ExportError(f"malformed value in {path}: {exc}") from exc
        nominal = physical * row_scale
        seconds = self.workstation.nlq_scan_seconds(nominal, d, matrix_type)
        return NlqScanReport(stats, physical, nominal, seconds)
