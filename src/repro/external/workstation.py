"""The workstation cost model: single-threaded flat-file analytics.

The paper's external comparison ran on a 1.6 GHz workstation with the
data set exported to text files.  Its C++ program scans the file once,
parsing each value from text and maintaining (n, L, Q) in memory.  Two
things make it lose at scale despite the head start of compiled code:
it is single-threaded (the server spreads the scan over 20 AMPs) and it
pays a text-parse per value.

Constants are fitted against Tables 1 and 2 (e.g. d=32: 49 s at n=100k
rising linearly to 774 s at n=1.6M).

:func:`model_build_seconds` models the *other* side of the paper's
argument: once (n, L, Q) exist, building any of the four models outside
the DBMS takes a few seconds at most, independent of n (Table 3) —
correlation is O(d²), PCA/regression are O(d³) (SVD / inversion),
clustering O(dk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.summary import MatrixType
from repro.errors import ModelError


@dataclass(frozen=True)
class WorkstationCostParameters:
    """Per-operation costs of the 1.6 GHz workstation, simulated seconds."""

    #: fixed per-row overhead (read line, tokenize)
    row_overhead: float = 2.62e-5
    #: parse one text value into a double
    parse_value: float = 4.4e-7
    #: one multiply-add of the (n, L, Q) update
    arith_op: float = 6.9e-7
    #: program startup, file open
    startup: float = 0.3


class WorkstationCostModel:
    """Charges for the one-pass (n, L, Q) scan over a flat file."""

    def __init__(self, params: WorkstationCostParameters | None = None) -> None:
        self.params = params or WorkstationCostParameters()

    def nlq_scan_seconds(
        self,
        rows: float,
        d: int,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> float:
        """Cost of scanning *rows* d-dimensional text rows maintaining
        (n, L, Q): parse d values, then d (L) + type-dependent (Q) ops."""
        p = self.params
        ops = d + matrix_type.update_ops(d)
        per_row = p.row_overhead + d * p.parse_value + ops * p.arith_op
        return p.startup + rows * per_row


#: fitted per-technique build times from sufficient statistics (Table 3):
#: a fixed overhead plus the technique's complexity term.
_BUILD_OVERHEAD = 0.7
_BUILD_RATES = {
    "correlation": ("d2", 4.0e-5),
    "regression": ("d3", 4.5e-6),
    "pca": ("d3", 1.22e-5),
    "clustering": ("dk", 2.0e-4),
    "factor_analysis": ("d3", 1.6e-5),
}


def model_build_seconds(technique: str, d: int, k: int = 16) -> float:
    """Simulated time to build a model once (n, L, Q) are available.

    Independent of n — the whole point of the summary matrices.  Shapes
    follow the paper's complexity analysis (Section 3.7): correlation
    O(d²); PCA and regression O(d³); clustering O(dk).
    """
    try:
        kind, rate = _BUILD_RATES[technique]
    except KeyError:
        known = ", ".join(sorted(_BUILD_RATES))
        raise ModelError(
            f"unknown technique {technique!r} (known: {known})"
        ) from None
    if kind == "d2":
        work = d * d
    elif kind == "d3":
        work = d * d * d
    else:
        work = d * k
    return _BUILD_OVERHEAD + rate * work
