"""The external workstation toolchain: the paper's C++ comparison point."""

from repro.external.cpp_tool import CppAnalysisTool, NlqScanReport
from repro.external.workstation import WorkstationCostModel, model_build_seconds

__all__ = [
    "CppAnalysisTool",
    "NlqScanReport",
    "WorkstationCostModel",
    "model_build_seconds",
]
