"""Concurrent model serving over the reproduction's database.

The layer the paper's deployment story implies but never writes down:
once models are built *inside* the DBMS and scored with UDFs, something
has to answer many concurrent clients against live tables.  This
package adds that something, in three pieces:

* :class:`~repro.serving.server.ServingServer` /
  :class:`~repro.serving.server.ServingSession` — a bounded session
  pool over one :class:`~repro.dbms.database.Database` with
  snapshot-consistent reads (:class:`~repro.serving.snapshot.TableSnapshot`);
* :class:`~repro.serving.registry.ModelRegistry` — versioned,
  catalog-resident model persistence (register → promote → score),
  MADlib-style;
* :class:`~repro.serving.batcher.MicroBatchScorer` — coalesces
  concurrent small score requests into single batched-kernel dispatches
  with per-request error isolation.

See ``docs/serving.md`` for the full story, knobs and failure modes.
"""

from repro.serving.batcher import MicroBatchScorer, ScoreRequest
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import (
    ModelRegistry,
    ModelVersion,
    RegisteredModel,
    component_table,
)
from repro.serving.server import ScoreResult, ServingServer, ServingSession
from repro.serving.snapshot import TableSnapshot

__all__ = [
    "MicroBatchScorer",
    "ModelRegistry",
    "ModelVersion",
    "RegisteredModel",
    "ScoreRequest",
    "ScoreResult",
    "ServingMetrics",
    "ServingServer",
    "ServingSession",
    "TableSnapshot",
    "component_table",
]
