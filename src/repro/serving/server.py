"""The multi-client serving layer: sessions, snapshots, one writer door.

A :class:`ServingServer` wraps one :class:`~repro.dbms.database.Database`
for concurrent model scoring:

* **sessions** — every client opens a :class:`ServingSession` from a
  bounded pool (``max_sessions``); a session's reads are
  *snapshot-consistent*: the first touch of a table pins its
  ``Table.version`` and per-partition row counts under the server's
  write lock, and every later read in the session answers against that
  immutable prefix while writers keep appending;
* **registry** — models are bound through the catalog-resident
  :class:`~repro.serving.registry.ModelRegistry`; a session pins its
  binding (name → version) at first use, so a concurrent ``promote``
  never flips which parameters answer an in-flight session;
* **micro-batching** — point-score requests funnel into the
  :class:`~repro.serving.batcher.MicroBatchScorer`, which coalesces
  concurrent small requests into one batched-kernel dispatch.

Writes go through :meth:`ServingServer.write` /
:meth:`ServingServer.insert_rows`, serialized on one lock.  That lock is
also held while pinning snapshots, which is what makes pins safe against
``insert_many``'s rollback (a pin can never observe a half-flushed batch
whose tail a failure would retract).

``ServingServer.close`` — called directly or via ``Database.close``,
where it is registered as a close listener — drains the micro-batch
queue (queued requests are answered, not dropped) and rejects new
sessions and requests with :class:`~repro.errors.ServingClosedError`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.udfs import register_scoring_udfs
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.metrics import QueryMetrics
from repro.errors import ServingClosedError, ServingError, ServingOverloadedError
from repro.serving.batcher import MicroBatchScorer
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.serving.snapshot import TableSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.database import Database, QueryResult


@dataclass
class ScoreResult:
    """One answered score request, stamped with its provenance.

    ``model_version`` says exactly which registered parameters produced
    the values; ``batched_with`` how many requests the answering flush
    coalesced (1 = the request ran alone); ``metrics`` the flush's
    shared :class:`QueryMetrics` record.
    """

    values: "list[Any]"
    model_name: str
    model_version: int
    batched_with: int
    latency_seconds: float
    metrics: QueryMetrics | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def scalar(self) -> Any:
        if len(self.values) != 1:
            raise ValueError(
                f"expected a single score, got {len(self.values)}"
            )
        return self.values[0]


class ServingSession:
    """One client's view of the server: pinned snapshots, pinned models.

    Sessions are cheap; hold one per logical unit of work (a scoring
    conversation that must see a consistent database state) and close it
    — or use it as a context manager — when done.  Sessions are not
    thread-safe; each client thread opens its own.
    """

    def __init__(self, server: "ServingServer", session_id: int) -> None:
        self._server = server
        self.session_id = session_id
        self._snapshots: dict[str, TableSnapshot] = {}
        self._models: dict[tuple[str, "int | None"], RegisteredModel] = {}
        self._closed = False

    # ------------------------------------------------------------- pinning
    def snapshot(self, table: str) -> TableSnapshot:
        """This session's pinned snapshot of *table* (pinned on first
        use, under the server's write lock; reused afterwards)."""
        self._check_open()
        key = table.lower()
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            snapshot = self._server._pin_snapshot(key)
            self._snapshots[key] = snapshot
        return snapshot

    def model(
        self, name: str, version: "int | None" = None
    ) -> RegisteredModel:
        """This session's binding of *name* (resolved on first use).

        With ``version=None`` the binding resolves to the version
        promoted *at first use* and stays pinned: a concurrent
        ``promote`` changes later sessions, never this one.
        """
        self._check_open()
        key = (name.lower(), version)
        model = self._models.get(key)
        if model is None:
            model = self._server.registry.get(name, version)
            self._models[key] = model
        return model

    # ------------------------------------------------------------- scoring
    def score(
        self,
        model_name: str,
        points: "np.ndarray | Sequence[Any]",
        version: "int | None" = None,
        coalesce: bool = True,
        timeout: float = 30.0,
    ) -> ScoreResult:
        """Score *points* (one row or a small block) through the
        micro-batch queue.

        ``coalesce=False`` bypasses the queue and scores synchronously —
        the naive per-request path the serving benchmark compares
        against; results are bit-identical either way.
        """
        self._check_open()
        model = self.model(model_name, version)
        X = model.validate_points(points)
        if coalesce:
            request = self._server._batcher.submit(model, X)
        else:
            request = self._server._batcher.score_sync(model, X)
        values = request.wait(timeout)
        return ScoreResult(
            values=values,
            model_name=model.name,
            model_version=model.version,
            batched_with=request.batched_with,
            latency_seconds=time.monotonic() - request.submitted_at,
            metrics=request.metrics,
        )

    def score_table(
        self,
        model_name: str,
        table: str,
        columns: Sequence[str],
        version: "int | None" = None,
    ) -> ScoreResult:
        """Score every pinned row of *table* against a registered model.

        Reads the session snapshot (appends after the pin are invisible;
        a TRUNCATE since the pin raises
        :class:`~repro.errors.SnapshotInvalidatedError`) and makes one
        batched-kernel dispatch over the whole block — no queue, the
        request already is a batch.
        """
        self._check_open()
        model = self.model(model_name, version)
        snapshot = self.snapshot(table)
        started = time.perf_counter()
        X = snapshot.numeric_matrix(columns)
        if X.shape[1] != model.d:
            raise ServingError(
                f"model {model.name!r} v{model.version} scores d={model.d} "
                f"points but {len(list(columns))} columns were read from "
                f"{snapshot.name!r}"
            )
        self._server.metrics.record_snapshot_read()
        values = model.finalize_scores(model.score_batch(X))
        elapsed = time.perf_counter() - started
        metrics = QueryMetrics(
            workers=1,
            total_seconds=elapsed,
            scan_seconds=0.0,
            accumulate_seconds=elapsed,
            rows_processed=snapshot.row_count,
            rows_scanned=snapshot.row_count,
            partitions_processed=len(snapshot.table.partitions),
            groups=1,
        )
        return ScoreResult(
            values=values,
            model_name=model.name,
            model_version=model.version,
            batched_with=1,
            latency_seconds=elapsed,
            metrics=metrics,
        )

    def summary(
        self,
        table: str,
        columns: Sequence[str],
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> SummaryStatistics:
        """The (n, L, Q) summary of the session's pinned rows.

        Served for free from the summary-matrix cache when its entry
        matches the pinned version exactly (zero rows scanned);
        otherwise computed over the snapshot prefix.
        """
        self._check_open()
        snapshot = self.snapshot(table)
        snapshot.validate()
        cache = self._server.db.summary_cache
        if cache is not None and cache.enabled:
            stats = cache.peek(
                snapshot.table, columns, matrix_type, snapshot.version
            )
            if stats is not None:
                self._server.metrics.record_snapshot_read(cache_hit=True)
                return stats
        self._server.metrics.record_snapshot_read()
        return snapshot.summary(columns, matrix_type)

    # ----------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._snapshots.clear()
        self._server._release_session()

    def _check_open(self) -> None:
        if self._closed:
            raise ServingClosedError(
                f"session {self.session_id} is closed"
            )
        if self._server.closed:
            raise ServingClosedError(
                "the serving server is shut down; open sessions are "
                "read-only tombstones"
            )

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingSession(id={self.session_id}, "
            f"snapshots={sorted(self._snapshots)}, "
            f"models={sorted(k[0] for k in self._models)}, "
            f"closed={self._closed})"
        )


class ServingServer:
    """Multi-client serving over one database.

    Construct directly or via :meth:`Database.serve`.  The server
    registers itself as a database close listener, so ``db.close()``
    drains in-flight requests and rejects new work with a typed error
    instead of letting queued requests deadlock on a dead engine pool.
    """

    def __init__(
        self,
        db: "Database",
        max_sessions: int = 64,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_depth: int = 1024,
    ) -> None:
        if max_sessions < 1:
            raise ServingError("max_sessions must be >= 1")
        self.db = db
        self.max_sessions = max_sessions
        self.metrics = ServingMetrics()
        #: serializes writers, registry mutations and snapshot pins
        self._write_lock = threading.RLock()
        self.registry = ModelRegistry(db, lock=self._write_lock)
        self._batcher = MicroBatchScorer(
            self.metrics,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue_depth=max_queue_depth,
            faults=lambda: db.faults,
        )
        self._admission = threading.Lock()
        self._session_count = 0
        self._session_serial = 0
        self._closed = False
        # Scoring goes through the same UDF kernels as SQL; make sure
        # the SQL route (EXPLAIN included) can resolve them too.
        if db.catalog.scalar_udf("linearregscore") is None:
            register_scoring_udfs(db)
        db.add_close_listener(self.close)

    # -------------------------------------------------------------- sessions
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def max_batch_size(self) -> int:
        return self._batcher.max_batch_size

    @property
    def max_wait_ms(self) -> float:
        return self._batcher.max_wait_ms

    @property
    def max_queue_depth(self) -> int:
        return self._batcher.max_queue_depth

    def session(self) -> ServingSession:
        """Open a session (raises typed errors when closed / at the cap)."""
        with self._admission:
            if self._closed:
                self.metrics.record_session_rejected()
                raise ServingClosedError(
                    "serving is shut down; new sessions are rejected"
                )
            if self._session_count >= self.max_sessions:
                self.metrics.record_session_rejected()
                raise ServingOverloadedError(
                    f"session pool is full ({self.max_sessions} active); "
                    f"close a session or raise max_sessions"
                )
            self._session_count += 1
            self._session_serial += 1
            serial = self._session_serial
        self.metrics.record_session(opened=True)
        return ServingSession(self, serial)

    def _release_session(self) -> None:
        with self._admission:
            self._session_count = max(0, self._session_count - 1)
        self.metrics.record_session(opened=False)

    # --------------------------------------------------------------- writes
    def write(self, sql: str) -> "QueryResult":
        """Execute a mutating statement, serialized with other writers
        and with snapshot pins."""
        if self._closed:
            raise ServingClosedError("serving is shut down; write rejected")
        with self._write_lock:
            return self.db.execute(sql)

    def insert_rows(
        self, table: str, rows: "Sequence[Sequence[Any]]"
    ) -> int:
        """Append rows, serialized like :meth:`write`."""
        if self._closed:
            raise ServingClosedError("serving is shut down; write rejected")
        with self._write_lock:
            return self.db.insert_rows(table, rows)

    def _pin_snapshot(self, table: str) -> TableSnapshot:
        # Under the write lock a pin can never observe a half-flushed
        # insert_many batch (whose rollback would retract pinned rows).
        with self._write_lock:
            return TableSnapshot(self.db.table(table))

    # -------------------------------------------------------------- explain
    def explain_score(
        self,
        model_name: str,
        version: "int | None" = None,
        table: "str | None" = None,
        columns: "Sequence[str] | None" = None,
        id_column: str = "i",
    ) -> str:
        """What scoring through this server executes, and why.

        Always reports the registry binding (which version answered and
        why) and the micro-batching configuration with live queue state.
        Given a *table* and its dimension *columns*, also renders the
        engine's EXPLAIN of the equivalent single-scan inline-parameter
        statement — the same kernels the micro-batcher dispatches.
        """
        binding = "explicit" if version is not None else "promoted"
        model = self.registry.get(model_name, version)
        lines = [
            f"serving: registry bind {model.name!r} -> v{model.version} "
            f"({binding}; kind={model.kind}, d={model.d}, "
            f"output={model.output_column})",
            f"serving: micro-batch max_batch_size={self.max_batch_size} "
            f"max_wait_ms={self.max_wait_ms:g} "
            f"queue_depth={self._batcher.queue_depth} "
            f"coalesce_factor={self.metrics.coalesce_factor:.2f}",
            "serving: snapshot reads pin table.version at session start; "
            "concurrent appends stay invisible, TRUNCATE invalidates",
        ]
        if table is not None:
            if columns is None:
                raise ServingError(
                    "explain_score needs the dimension columns when a "
                    "table is given"
                )
            generator = ScoringSqlGenerator(
                table=table, dimensions=list(columns), id_column=id_column
            )
            sql = self._inline_sql(generator, model)
            with self._write_lock:
                plan = self.db.explain(sql)
            lines.append(
                "serving: plan of the equivalent single-scan statement:"
            )
            lines.append(plan)
        return "\n".join(lines)

    @staticmethod
    def _inline_sql(
        generator: ScoringSqlGenerator, model: RegisteredModel
    ) -> str:
        if model.kind == "regression":
            beta = model.params["beta"]
            return generator.regression_inline_sql(
                float(beta[0]), [float(b) for b in beta[1:]]
            )
        if model.kind == "kmeans":
            return generator.clustering_inline_sql(model.params["c"])
        if model.kind == "lda":
            return generator.lda_inline_sql(
                model.params["b"], model.params["w"]
            )
        # gmm / naive_bayes share the nbscore parameterization.
        return generator.naive_bayes_inline_sql(
            model.params["nb_mu"],
            model.params["nb_iv"],
            model.params["nb_bias"],
        )

    # ------------------------------------------------------------- shutdown
    def close(self, drain: bool = True) -> None:
        """Shut serving down (idempotent; registered on ``db.close``).

        New sessions, writes and score requests are rejected with
        :class:`ServingClosedError`; requests already queued are drained
        and answered (``drain=False`` fails them typed instead).
        """
        with self._admission:
            if self._closed:
                return
            self._closed = True
        self._batcher.close(drain=drain)

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingServer(sessions={self._session_count}/"
            f"{self.max_sessions}, queue={self._batcher.queue_depth}, "
            f"closed={self._closed})"
        )
