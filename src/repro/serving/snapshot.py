"""Snapshot-consistent table reads for concurrent serving.

Storage is append-mostly: :meth:`~repro.dbms.storage.Partition.append`
and ``extend_columns`` only ever add rows at the tail, and the row
counter is bumped *after* every column holds the new values.  A reader
that pins each partition's row count therefore owns an immutable prefix
— rows ``0..pinned-1`` can never change under concurrent appends, no
matter how the writer and reader threads interleave.  That is the whole
snapshot mechanism: :class:`TableSnapshot` pins ``Table.version``,
``Table.data_version`` and the per-partition counts once, then serves
every read from those prefixes.

Two table operations break the prefix rule and are handled explicitly:

* **TRUNCATE** replaces the partition objects and records the fact in
  ``Table.data_version``.  A snapshot whose pinned ``version`` is older
  raises :class:`~repro.errors.SnapshotInvalidatedError` on every later
  read — stale-but-consistent is allowed for appends only.
* **Batch-flush rollback** (``insert_many`` failure) removes tail rows.
  Snapshots must therefore never pin a mid-batch state: the serving
  layer creates snapshots under the same write lock that serializes
  writers, so a pin observes either no batch or a fully
  flushed/rolled-back one.

Snapshots deliberately bypass the partitions' shared block-cache LRU
(mutating an ``OrderedDict`` from concurrent reader threads is not
safe) and keep their own per-snapshot block cache instead — repeated
scoring sweeps over one session still convert each column exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import SnapshotInvalidatedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.storage import Partition, Table


class TableSnapshot:
    """A pinned, immutable view of one table's rows.

    Create through :meth:`repro.serving.server.ServingSession.snapshot`
    (which holds the server's write lock during the pin); reading never
    takes a lock.
    """

    def __init__(self, table: "Table") -> None:
        self._table = table
        self.name = table.name
        self.schema = table.schema
        #: ``Table.version`` at pin time — the version every read is
        #: consistent with
        self.version = table.version
        #: ``Table.data_version`` at pin time
        self.data_version = table.data_version
        # Partition *objects* are pinned alongside counts: TRUNCATE
        # swaps in fresh partitions, so even a racing one can never make
        # these prefixes disappear under a read that already started.
        self._partitions: list["Partition"] = list(table.partitions)
        self._pinned_rows: list[int] = [
            partition.row_count for partition in self._partitions
        ]
        self.row_count = sum(self._pinned_rows)
        #: per-snapshot block cache: column-position tuple -> matrix
        self._blocks: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------ validity
    @property
    def table(self) -> "Table":
        return self._table

    @property
    def stale_rows(self) -> int:
        """Rows appended to the live table since the pin (0 = fresh)."""
        live = sum(p.row_count for p in self._table.partitions)
        return max(0, live - self.row_count)

    def is_valid(self) -> bool:
        """Whether reads may proceed (no destructive mutation since pin)."""
        return self._table.data_version <= self.version

    def validate(self) -> None:
        """Raise :class:`SnapshotInvalidatedError` unless :meth:`is_valid`."""
        if not self.is_valid():
            raise SnapshotInvalidatedError(
                f"snapshot of {self.name!r} pinned version {self.version} "
                f"but the table was destructively mutated "
                f"(data_version {self._table.data_version}); "
                f"open a new session to see the new data"
            )

    # --------------------------------------------------------------- reads
    def numeric_matrix(self, columns: Sequence[str]) -> np.ndarray:
        """The pinned rows of *columns* as a float matrix (NULL → NaN).

        Row order is partition order then insertion order within each
        partition — identical to :meth:`Table.numeric_matrix` over the
        same rows.
        """
        self.validate()
        positions = tuple(
            self.schema.position_of(name) for name in columns
        )
        cached = self._blocks.get(positions)
        if cached is not None:
            return cached
        blocks = []
        for partition, pinned in zip(self._partitions, self._pinned_rows):
            if not pinned:
                continue
            block = np.empty((pinned, len(positions)))
            for out_index, position in enumerate(positions):
                block[:, out_index] = _prefix_as_floats(
                    partition.column(position), pinned
                )
            blocks.append(block)
        matrix = (
            np.vstack(blocks) if blocks else np.empty((0, len(positions)))
        )
        self._blocks[positions] = matrix
        return matrix

    def column_values(self, name: str) -> list:
        """The pinned values of one column, in snapshot row order."""
        self.validate()
        position = self.schema.position_of(name)
        values: list = []
        for partition, pinned in zip(self._partitions, self._pinned_rows):
            values.extend(partition.column(position)[:pinned])
        return values

    def rows(self) -> Iterator[tuple]:
        """The pinned rows, in snapshot row order."""
        self.validate()
        for partition, pinned in zip(self._partitions, self._pinned_rows):
            if not pinned:
                continue
            columns = [
                partition.column(position)[:pinned]
                for position in range(partition.width)
            ]
            yield from zip(*columns)

    def summary(
        self,
        columns: Sequence[str],
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> SummaryStatistics:
        """The (n, L, Q) summary of the pinned rows — the reference
        one-pass computation over the snapshot matrix."""
        return SummaryStatistics.from_matrix(
            self.numeric_matrix(columns), matrix_type
        )

    def __repr__(self) -> str:
        return (
            f"TableSnapshot({self.name!r}, version={self.version}, "
            f"rows={self.row_count}, valid={self.is_valid()})"
        )


def _prefix_as_floats(column: "list", pinned: int) -> np.ndarray:
    """The first *pinned* values of a column list as floats (NULL → NaN).

    The slice is taken first — under the GIL a list slice is atomic, and
    entries below *pinned* are immutable — so a concurrent append can
    never tear the conversion.
    """
    prefix = column[:pinned]
    try:
        return np.asarray(prefix, dtype=float)
    except (TypeError, ValueError):
        return np.asarray(
            [np.nan if v is None else v for v in prefix], dtype=float
        )
