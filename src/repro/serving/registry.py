"""A versioned, catalog-resident model registry (MADlib-style).

MADlib (arXiv:1208.4165) keeps fitted models *in the database*: model
parameters live in ordinary tables, so they survive with the data, ship
with backups, and are queryable like everything else.  This module
adopts that pattern for the five scoreable model families of the paper:

* every :meth:`ModelRegistry.register` persists the model's parameter
  matrices into catalog tables through the Section 3.5 layouts
  (:func:`~repro.core.models.base.store_matrix` /
  :func:`~repro.core.models.base.store_vector`), under names derived
  from the model name and an auto-incremented version;
* one metadata table — ``model_registry(model_id, name, version, kind,
  promoted, registered_at)`` — records every version ever registered;
* ``get(name)`` binds to the **promoted** version, ``get(name,
  version=n)`` to an explicit one; either way the returned
  :class:`RegisteredModel` carries its version stamp, so a scoring
  result can always say exactly which parameters produced it;
* ``promote`` flips which version ``get(name)`` resolves to — the
  register → validate → promote lifecycle — via plain SQL UPDATEs on
  the metadata table.

Scoring goes through the same batched kernels as the vectorized SELECT
path (:mod:`repro.core.scoring.udfs`): :meth:`RegisteredModel.score_batch`
builds one dense argument block and makes one ``compute_batch`` call
per UDF, bit-identical to the per-row ``compute`` reference the
isolation fallback uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.models.base import load_matrix, load_vector, store_matrix, store_vector
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.kmeans import KMeansModel
from repro.core.models.lda import LdaModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.scoring.udfs import (
    ClassifyScoreUdf,
    ClusterScoreUdf,
    KMeansDistanceUdf,
    LinearRegScoreUdf,
    NaiveBayesScoreUdf,
)
from repro.dbms.schema import Column, TableSchema, validate_identifier
from repro.dbms.types import SqlType
from repro.errors import RegistryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.database import Database

#: the metadata catalog table every registry operation reads and writes
REGISTRY_TABLE = "model_registry"

# Stateless kernel singletons shared by every RegisteredModel.
_LINREG = LinearRegScoreUdf()
_DISTANCE = KMeansDistanceUdf()
_CLUSTER = ClusterScoreUdf()
_CLASSIFY = ClassifyScoreUdf()
_NBSCORE = NaiveBayesScoreUdf()


@dataclass(frozen=True)
class ModelVersion:
    """One row of the metadata table, as the list/get APIs report it."""

    model_id: int
    name: str
    version: int
    kind: str
    promoted: bool
    registered_at: int

    @property
    def tables(self) -> "tuple[str, ...]":
        """The catalog tables holding this version's parameters."""
        parts = _COMPONENTS[self.kind]
        return tuple(
            component_table(self.name, self.version, part) for part in parts
        )


@dataclass
class RegisteredModel:
    """A version-stamped, immutable scoring handle.

    ``params`` holds the parameter arrays loaded back from the catalog
    tables; ``score_batch`` dispatches the batched scoring kernels over
    an ``(m, d)`` point block, ``score_rows`` is the per-row reference
    path the micro-batcher degrades to for per-request isolation.
    """

    name: str
    version: int
    kind: str
    promoted: bool
    params: dict[str, np.ndarray] = field(repr=False)

    @property
    def key(self) -> "tuple[str, int]":
        return (self.name, self.version)

    @property
    def d(self) -> int:
        if self.kind == "regression":
            return int(self.params["beta"].shape[0]) - 1
        if self.kind in ("kmeans", "gmm"):
            return int(self.params["c"].shape[1])
        if self.kind == "naive_bayes":
            return int(self.params["mu"].shape[1])
        return int(self.params["w"].shape[1])  # lda

    @property
    def output_column(self) -> str:
        return {
            "regression": "yhat",
            "kmeans": "j",
            "gmm": "j",
            "naive_bayes": "label",
            "lda": "label",
        }[self.kind]

    @property
    def integer_result(self) -> bool:
        return self.kind != "regression"

    # -------------------------------------------------------------- scoring
    def validate_points(self, points: "np.ndarray | Sequence[Any]") -> np.ndarray:
        """Coerce *points* to an ``(m, d)`` float block (NULL → NaN)."""
        X = np.asarray(points, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise RegistryError(
                f"model {self.name!r} v{self.version} scores d={self.d} "
                f"points, got shape {tuple(np.shape(points))}"
            )
        return X

    def score_batch(self, X: np.ndarray) -> np.ndarray:
        """Score a whole block with one ``compute_batch`` call per UDF.

        Returns a float vector of length ``m``; NaN marks a NULL result
        (a point with a NULL coordinate), which :meth:`finalize_scores`
        restores to None exactly like the vectorized SELECT path does.
        """
        if self.kind == "regression":
            beta = self.params["beta"]
            args = np.empty((X.shape[0], X.shape[1] + beta.shape[0]))
            args[:, : X.shape[1]] = X
            args[:, X.shape[1] :] = beta
            return _LINREG.compute_batch(args)
        if self.kind == "kmeans":
            distances = self._per_group_scores(
                X, lambda j: self._distance_args(X, j)
            )
            return _CLUSTER.compute_batch(distances)
        # gmm / naive_bayes / lda: per-group scores then arg-max.
        scores = self._per_group_scores(X, lambda j: self._score_args(X, j))
        return _CLASSIFY.compute_batch(scores)

    def score_rows(self, X: np.ndarray) -> "list[Any]":
        """Per-row reference scoring (``compute`` per point).

        Bit-identical to :meth:`score_batch` by the kernel contract; the
        micro-batcher uses it to isolate a poisoned request from its
        batch siblings.  NULL results come back as None directly.
        """
        results: "list[Any]" = []
        for row in X:
            values = [None if np.isnan(v) else float(v) for v in row]
            results.append(self._score_one(values))
        return results

    def finalize_scores(self, raw: np.ndarray) -> "list[Any]":
        """Kernel output → python values (ints for labels, None for NaN),
        with NB/LDA arg-max indices mapped back to class labels."""
        values: "list[Any]" = []
        classes = self.params.get("cls")
        for v in raw:
            if np.isnan(v):
                values.append(None)
            elif self.integer_result:
                index = int(v)
                if classes is not None:
                    index = int(classes[index - 1])
                values.append(index)
            else:
                values.append(float(v))
        return values

    # ------------------------------------------------------------ internals
    def _group_count(self) -> int:
        if self.kind in ("kmeans", "gmm"):
            return int(self.params["c"].shape[0])
        if self.kind == "naive_bayes":
            return int(self.params["mu"].shape[0])
        return int(self.params["w"].shape[0])  # lda

    def _per_group_scores(self, X: np.ndarray, args_for) -> np.ndarray:
        k = self._group_count()
        out = np.empty((X.shape[0], k))
        for j in range(k):
            udf, args = args_for(j)
            out[:, j] = udf.compute_batch(args)
        return out

    def _distance_args(self, X: np.ndarray, j: int):
        d = X.shape[1]
        args = np.empty((X.shape[0], 2 * d))
        args[:, :d] = X
        args[:, d:] = self.params["c"][j]
        return _DISTANCE, args

    def _score_args(self, X: np.ndarray, j: int):
        d = X.shape[1]
        if self.kind == "lda":
            # Affine discriminant: linearregscore(x, b0, w).
            args = np.empty((X.shape[0], 2 * d + 1))
            args[:, :d] = X
            args[:, d] = self.params["b"][j]
            args[:, d + 1 :] = self.params["w"][j]
            return _LINREG, args
        # gmm / naive_bayes share the Gaussian log-density form:
        # nbscore(x, mu, iv, bias).
        args = np.empty((X.shape[0], 3 * d + 1))
        args[:, :d] = X
        args[:, d : 2 * d] = self.params["nb_mu"][j]
        args[:, 2 * d : 3 * d] = self.params["nb_iv"][j]
        args[:, 3 * d] = self.params["nb_bias"][j]
        return _NBSCORE, args

    def _score_one(self, values: "list[Any]") -> Any:
        if self.kind == "regression":
            beta = self.params["beta"]
            raw = _LINREG.compute(*values, *(float(b) for b in beta))
            return None if raw is None else float(raw)
        if self.kind == "kmeans":
            distances = [
                _DISTANCE.compute(*values, *(float(c) for c in centroid))
                for centroid in self.params["c"]
            ]
            raw = (
                None
                if any(v is None for v in distances)
                else _CLUSTER.compute(*distances)
            )
        elif self.kind == "lda":
            scores = [
                _LINREG.compute(
                    *values, float(self.params["b"][j]), *map(float, weight)
                )
                for j, weight in enumerate(self.params["w"])
            ]
            raw = (
                None
                if any(v is None for v in scores)
                else _CLASSIFY.compute(*scores)
            )
        else:  # gmm / naive_bayes
            scores = [
                _NBSCORE.compute(
                    *values,
                    *map(float, self.params["nb_mu"][j]),
                    *map(float, self.params["nb_iv"][j]),
                    float(self.params["nb_bias"][j]),
                )
                for j in range(self._group_count())
            ]
            raw = (
                None
                if any(v is None for v in scores)
                else _CLASSIFY.compute(*scores)
            )
        if raw is None:
            return None
        classes = self.params.get("cls")
        return int(classes[int(raw) - 1]) if classes is not None else int(raw)


#: component-table suffixes persisted per model kind
_COMPONENTS: dict[str, tuple[str, ...]] = {
    "regression": ("beta",),
    "kmeans": ("c", "r", "w"),
    "gmm": ("c", "r", "w"),
    "naive_bayes": ("mu", "var", "prior", "cls"),
    "lda": ("w", "b", "cls"),
}

#: which components use the (j, x1..xd) matrix layout (the rest are
#: one-row vector tables)
_MATRIX_PARTS: dict[str, frozenset[str]] = {
    "regression": frozenset(),
    "kmeans": frozenset({"c", "r"}),
    "gmm": frozenset({"c", "r"}),
    "naive_bayes": frozenset({"mu", "var"}),
    "lda": frozenset({"w"}),
}


def component_table(name: str, version: int, part: str) -> str:
    """The catalog-table name holding one component of one version."""
    return f"mdl_{name}_v{version}_{part}"


def _registry_schema() -> TableSchema:
    return TableSchema(
        (
            Column("model_id", SqlType.INTEGER, nullable=False),
            Column("name", SqlType.VARCHAR, nullable=False),
            Column("version", SqlType.INTEGER, nullable=False),
            Column("kind", SqlType.VARCHAR, nullable=False),
            Column("promoted", SqlType.INTEGER, nullable=False),
            Column("registered_at", SqlType.INTEGER, nullable=False),
        ),
        primary_key="model_id",
    )


class ModelRegistry:
    """Versioned model persistence over one database's catalog.

    Thread-safety: every operation serializes on one lock (metadata
    reads included — the metadata table is ordinary storage, and a
    reader racing a writer could otherwise see a half-appended row).
    Loaded :class:`RegisteredModel` handles are immutable and cached, so
    the hot serving path — scoring against an already-bound model —
    never touches the lock.
    """

    def __init__(
        self, db: "Database", lock: "threading.RLock | None" = None
    ) -> None:
        self._db = db
        self._lock = lock if lock is not None else threading.RLock()
        self._loaded: dict[tuple[str, int], RegisteredModel] = {}
        # A DROP of the metadata table (or a component table) makes the
        # loaded-handle cache stale; evict by model name prefix.
        db.catalog.add_drop_listener(self._on_drop)

    # ----------------------------------------------------------- lifecycle
    def register(self, name: str, model: object) -> ModelVersion:
        """Persist *model* under *name* as the next version.

        Accepts the five fitted model classes (k-means, GMM, linear
        regression, naive Bayes, LDA).  The first version of a name is
        promoted automatically so ``get(name)`` works immediately; later
        versions start unpromoted and go live via :meth:`promote`.
        """
        validate_identifier(name, "model name")
        name = name.lower()
        kind, components = _components_of(model)
        with self._lock:
            self._ensure_metadata_table()
            rows = self._metadata_rows()
            versions = [r.version for r in rows if r.name == name]
            version = max(versions, default=0) + 1
            next_id = max((r.model_id for r in rows), default=0) + 1
            self._store_components(name, version, components)
            promoted = not versions
            self._db.insert_rows(
                REGISTRY_TABLE,
                [(next_id, name, version, kind, int(promoted), next_id)],
            )
            return ModelVersion(
                model_id=next_id,
                name=name,
                version=version,
                kind=kind,
                promoted=promoted,
                registered_at=next_id,
            )

    def get(self, name: str, version: "int | None" = None) -> RegisteredModel:
        """Bind to a model version (explicit, or the promoted one).

        The returned handle is immutable and version-stamped: scoring
        through it keeps using the same parameters even if another
        client registers or promotes newer versions concurrently.
        """
        name = name.lower()
        with self._lock:
            rows = [r for r in self._metadata_rows() if r.name == name]
            if not rows:
                raise RegistryError(f"no model registered under {name!r}")
            if version is None:
                promoted = [r for r in rows if r.promoted]
                if not promoted:
                    raise RegistryError(
                        f"model {name!r} has no promoted version; pass "
                        f"version= explicitly or promote one"
                    )
                row = promoted[0]
            else:
                matches = [r for r in rows if r.version == version]
                if not matches:
                    known = sorted(r.version for r in rows)
                    raise RegistryError(
                        f"model {name!r} has no version {version} "
                        f"(registered: {known})"
                    )
                row = matches[0]
            cached = self._loaded.get((name, row.version))
            if cached is not None:
                # The promoted flag may have flipped since the load.
                cached.promoted = row.promoted
                return cached
            model = self._load(row)
            self._loaded[(name, row.version)] = model
            return model

    def promote(self, name: str, version: int) -> ModelVersion:
        """Make *version* the one ``get(name)`` resolves to."""
        name = name.lower()
        with self._lock:
            rows = [r for r in self._metadata_rows() if r.name == name]
            if not any(r.version == version for r in rows):
                known = sorted(r.version for r in rows)
                raise RegistryError(
                    f"cannot promote {name!r} v{version}: registered "
                    f"versions are {known}"
                )
            self._db.execute(
                f"UPDATE {REGISTRY_TABLE} SET promoted = 0 "
                f"WHERE name = '{name}'"
            )
            self._db.execute(
                f"UPDATE {REGISTRY_TABLE} SET promoted = 1 "
                f"WHERE name = '{name}' AND version = {int(version)}"
            )
            (row,) = [
                r for r in self._metadata_rows()
                if r.name == name and r.version == version
            ]
            return row

    def list(self, name: "str | None" = None) -> "list[ModelVersion]":
        """Every registered version, newest first (optionally one name)."""
        with self._lock:
            rows = self._metadata_rows()
        if name is not None:
            rows = [r for r in rows if r.name == name.lower()]
        return sorted(rows, key=lambda r: (r.name, -r.version))

    # ----------------------------------------------------------- internals
    def _ensure_metadata_table(self) -> None:
        if not self._db.catalog.has_table(REGISTRY_TABLE):
            self._db.create_table(REGISTRY_TABLE, _registry_schema())

    def _metadata_rows(self) -> "list[ModelVersion]":
        if not self._db.catalog.has_table(REGISTRY_TABLE):
            return []
        return [
            ModelVersion(
                model_id=int(row[0]),
                name=str(row[1]),
                version=int(row[2]),
                kind=str(row[3]),
                promoted=bool(row[4]),
                registered_at=int(row[5]),
            )
            for row in self._db.table(REGISTRY_TABLE).rows()
        ]

    def _store_components(
        self, name: str, version: int, components: dict[str, np.ndarray]
    ) -> None:
        for part, values in components.items():
            table = component_table(name, version, part)
            if values.ndim == 2:
                store_matrix(self._db, table, values)
            else:
                store_vector(self._db, table, values)

    def _load(self, row: ModelVersion) -> RegisteredModel:
        params: dict[str, np.ndarray] = {}
        matrix_parts = _MATRIX_PARTS[row.kind]
        for part in _COMPONENTS[row.kind]:
            table = component_table(row.name, row.version, part)
            if not self._db.catalog.has_table(table):
                raise RegistryError(
                    f"model {row.name!r} v{row.version} is missing its "
                    f"parameter table {table!r} (dropped?)"
                )
            loader = load_matrix if part in matrix_parts else load_vector
            params[part] = loader(self._db, table)
        if row.kind in ("gmm", "naive_bayes"):
            params.update(_gaussian_score_params(row.kind, params))
        if "cls" in params:
            params["cls"] = np.asarray(
                [int(v) for v in params["cls"]], dtype=int
            )
        return RegisteredModel(
            name=row.name,
            version=row.version,
            kind=row.kind,
            promoted=row.promoted,
            params=params,
        )

    def _on_drop(self, table_name: str) -> None:
        if table_name == REGISTRY_TABLE or table_name.startswith("mdl_"):
            self._loaded.clear()


def _components_of(model: object) -> "tuple[str, dict[str, np.ndarray]]":
    """Dispatch a fitted model object to (kind, component arrays)."""
    if isinstance(model, LinearRegressionModel):
        return "regression", {"beta": np.asarray(model.beta, dtype=float)}
    if isinstance(model, KMeansModel):
        return "kmeans", {
            "c": np.asarray(model.centroids, dtype=float),
            "r": np.asarray(model.radii, dtype=float),
            "w": np.asarray(model.weights, dtype=float),
        }
    if isinstance(model, GaussianMixtureModel):
        return "gmm", {
            "c": np.asarray(model.means, dtype=float),
            "r": np.asarray(model.variances, dtype=float),
            "w": np.asarray(model.weights, dtype=float),
        }
    if isinstance(model, NaiveBayesModel):
        return "naive_bayes", {
            "mu": np.asarray(model.means, dtype=float),
            "var": np.asarray(model.variances, dtype=float),
            "prior": np.asarray(model.priors, dtype=float),
            "cls": np.asarray(model.classes, dtype=float),
        }
    if isinstance(model, LdaModel):
        return "lda", {
            "w": np.asarray(model.weights, dtype=float),
            "b": np.asarray(model.biases, dtype=float),
            "cls": np.asarray(model.classes, dtype=float),
        }
    raise RegistryError(
        f"cannot register a {type(model).__name__}; supported models: "
        f"LinearRegressionModel, KMeansModel, GaussianMixtureModel, "
        f"NaiveBayesModel, LdaModel"
    )


def _gaussian_score_params(
    kind: str, params: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Precompute the nbscore argument form for gmm / naive Bayes.

    Both score a point per group with the diagonal Gaussian log-density
    ``bias − ½ Σ (x−µ)²·iv`` where iv is the inverse variance and bias
    folds the log prior/weight and the normalizer — exactly the
    ``nbscore`` UDF's parameterization.
    """
    if kind == "gmm":
        mu, var, weight = params["c"], params["r"], params["w"]
    else:
        mu, var, weight = params["mu"], params["var"], params["prior"]
    var = np.maximum(var, 1e-12)
    iv = 1.0 / var
    d = mu.shape[1]
    bias = (
        np.log(np.maximum(weight, 1e-300))
        - 0.5 * np.sum(np.log(var), axis=1)
        - 0.5 * d * np.log(2.0 * np.pi)
    )
    return {"nb_mu": mu, "nb_iv": iv, "nb_bias": bias}
