"""Micro-batched scoring: coalesce many small requests into one kernel.

A naive serving loop pays the full dispatch cost — queue handoff, model
lookup, argument-block construction, a numpy kernel launch — once per
request, even when the request is a single row.  Under many concurrent
clients those fixed costs dominate and the GIL serializes them.  The
:class:`MicroBatchScorer` amortizes them instead: requests land in one
bounded queue, a dedicated flusher thread waits up to ``max_wait_ms``
for the batch to fill to ``max_batch_size`` rows, then scores the whole
coalesced block with **one** ``compute_batch`` call per UDF — the same
batched kernels the vectorized SELECT path uses, so a coalesced answer
is bit-identical to a per-request one.

Failure semantics:

* a request that cannot be admitted (queue at ``max_queue_depth``,
  scorer closed) fails alone, with a typed error, before touching the
  queue — the ``serving.enqueue`` fault site fires here;
* a batch whose coalesced kernel dispatch fails (the ``serving.flush``
  fault site, or a poisoned request) **degrades to per-request
  scoring**: every request is re-scored alone on the per-row reference
  path, so an error reaches only the request that caused it and the
  siblings still get bit-identical answers — the serving twin of the
  engine's vectorized→row degradation;
* :meth:`close` with ``drain=True`` (what ``Database.close`` triggers)
  stops admissions immediately but answers everything already queued —
  queued requests are never dropped.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.metrics import QueryMetrics
from repro.errors import (
    ServingClosedError,
    ServingError,
    ServingOverloadedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.metrics import ServingMetrics
    from repro.serving.registry import RegisteredModel


class ScoreRequest:
    """One in-flight score request: a point block bound to one model
    version, answered through an event the caller waits on."""

    def __init__(self, model: "RegisteredModel", X: np.ndarray) -> None:
        self.model = model
        self.X = X
        self.submitted_at = time.monotonic()
        self.values: "list[Any] | None" = None
        self.error: BaseException | None = None
        #: how many requests the answering flush coalesced (1 = alone)
        self.batched_with = 0
        #: the flush's shared QueryMetrics record (None until answered)
        self.metrics: QueryMetrics | None = None
        self._done = threading.Event()

    @property
    def rows(self) -> int:
        return int(self.X.shape[0])

    def wait(self, timeout: "float | None" = None) -> "list[Any]":
        """Block until answered; raise the per-request error if any."""
        if not self._done.wait(timeout):
            raise ServingError(
                f"score request against {self.model.name!r} "
                f"v{self.model.version} not answered within {timeout:g}s"
            )
        if self.error is not None:
            raise self.error
        assert self.values is not None
        return self.values

    def _resolve(self, batched_with: int, metrics: QueryMetrics) -> None:
        self.batched_with = batched_with
        self.metrics = metrics
        self._done.set()


class MicroBatchScorer:
    """The bounded coalescing queue plus its flusher thread.

    ``faults`` is a zero-argument callable returning the live fault
    plan, so swapping ``db.faults`` mid-run arms the serving sites too.
    The flusher thread is started lazily on the first submit and runs as
    a daemon; :meth:`close` drains and joins it.
    """

    def __init__(
        self,
        metrics: "ServingMetrics",
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_depth: int = 1024,
        faults: "Callable[[], FaultPlan | NullFaults] | None" = None,
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ServingError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ServingError("max_queue_depth must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self._metrics = metrics
        self._faults = faults if faults is not None else (lambda: NULL_FAULTS)
        self._cond = threading.Condition()
        self._queue: "deque[ScoreRequest]" = deque()
        self._flusher: threading.Thread | None = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------ admission
    def submit(self, model: "RegisteredModel", X: np.ndarray) -> ScoreRequest:
        """Admit one request; returns immediately with its handle."""
        faults = self._faults()
        if faults.enabled:
            # Admission faults reach only this request, never the queue.
            faults.fire(
                "serving.enqueue", model=model.name, version=model.version
            )
        request = ScoreRequest(model, X)
        with self._cond:
            if self._closed:
                self._metrics.record_rejected()
                raise ServingClosedError(
                    "serving is shut down; new score requests are rejected"
                )
            if len(self._queue) >= self.max_queue_depth:
                self._metrics.record_rejected()
                raise ServingOverloadedError(
                    f"micro-batch queue is full "
                    f"({self.max_queue_depth} requests waiting); back off "
                    f"and retry"
                )
            self._queue.append(request)
            self._metrics.record_enqueue(len(self._queue))
            if self._flusher is None:
                self._flusher = threading.Thread(
                    target=self._run, name="serving-flusher", daemon=True
                )
                self._flusher.start()
            self._cond.notify_all()
        return request

    def score_sync(self, model: "RegisteredModel", X: np.ndarray) -> ScoreRequest:
        """Score one request alone, bypassing the queue entirely.

        The naive per-request execution path the benchmark compares
        micro-batching against: every fixed cost is paid per request.
        Fault sites still fire, so chaos coverage is identical.
        """
        faults = self._faults()
        if faults.enabled:
            faults.fire(
                "serving.enqueue", model=model.name, version=model.version
            )
        request = ScoreRequest(model, X)
        self._flush([request])
        return request

    # ------------------------------------------------------------- shutdown
    def close(self, drain: bool = True) -> None:
        """Stop admissions; drain (default) or fail the queued requests.

        Idempotent.  With ``drain=True`` every queued request is still
        flushed and answered before the flusher exits; with
        ``drain=False`` queued requests fail with
        :class:`ServingClosedError` immediately.
        """
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    request.error = ServingClosedError(
                        "serving shut down before this request was scored"
                    )
                    request._resolve(0, QueryMetrics())
                    self._metrics.record_completion(
                        time.monotonic() - request.submitted_at, failed=True
                    )
                self._metrics.record_dequeue(0)
            self._cond.notify_all()
            flusher = self._flusher
        if flusher is not None and flusher is not threading.current_thread():
            flusher.join(timeout=30.0)

    # -------------------------------------------------------------- flusher
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                head = self._queue[0]
                deadline = head.submitted_at + self.max_wait_ms / 1e3
                # Wait for the batch to fill — but never past the head
                # request's deadline, and not at all once closing.
                while not self._closed and self._queued_rows() < self.max_batch_size:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._take_batch()
                self._metrics.record_dequeue(len(self._queue))
            self._flush(batch)

    def _queued_rows(self) -> int:
        return sum(request.rows for request in self._queue)

    def _take_batch(self) -> "list[ScoreRequest]":
        """Pop the head plus every queued request for the same model
        version, up to ``max_batch_size`` rows (the head always goes,
        however large).  Requests for other models keep their order and
        ride a later flush."""
        head = self._queue.popleft()
        batch = [head]
        rows = head.rows
        kept: "deque[ScoreRequest]" = deque()
        while self._queue:
            request = self._queue.popleft()
            if request.model.key == head.model.key and rows < self.max_batch_size:
                batch.append(request)
                rows += request.rows
            else:
                kept.append(request)
        self._queue.extend(kept)
        return batch

    def _flush(self, batch: "list[ScoreRequest]") -> None:
        started = time.perf_counter()
        model = batch[0].model
        total_rows = sum(request.rows for request in batch)
        degraded = False
        reason = ""
        try:
            faults = self._faults()
            if faults.enabled:
                faults.fire(
                    "serving.flush",
                    model=model.name,
                    version=model.version,
                    requests=len(batch),
                    rows=total_rows,
                )
            if len(batch) == 1:
                stacked = batch[0].X
            else:
                stacked = np.vstack([request.X for request in batch])
            values = model.finalize_scores(model.score_batch(stacked))
            offset = 0
            for request in batch:
                request.values = values[offset : offset + request.rows]
                offset += request.rows
        except BaseException as error:
            # Coalesced dispatch failed: isolate — score each request
            # alone on the per-row reference path, so only a genuinely
            # poisoned request sees an error.
            degraded = True
            reason = f"{type(error).__name__}: {error}"
            for request in batch:
                try:
                    request.values = request.model.score_rows(request.X)
                except BaseException as request_error:
                    request.error = request_error
        elapsed = time.perf_counter() - started
        metrics = QueryMetrics(
            workers=1,
            total_seconds=elapsed,
            accumulate_seconds=elapsed,
            rows_processed=total_rows,
            groups=1,
            statements_batched=len(batch),
            fallbacks=1 if degraded else 0,
            fallback_reason=reason,
        )
        self._metrics.record_flush(len(batch), degraded)
        now = time.monotonic()
        for request in batch:
            request._resolve(len(batch), metrics)
            self._metrics.record_completion(
                now - request.submitted_at, failed=request.error is not None
            )
