"""Serving-side observability: queue depth, coalescing, tail latency.

:class:`~repro.dbms.metrics.QueryMetrics` describes one statement;
serving needs the orthogonal *fleet* view — how deep the micro-batch
queue runs, how many requests each flush coalesces, and what the p99
request latency is under concurrent clients.  One
:class:`ServingMetrics` instance lives on each
:class:`~repro.serving.server.ServingServer` and is written from client
threads and the flusher thread alike, so every update takes the lock.

Latencies are kept in a bounded ring (the most recent
:data:`LATENCY_WINDOW` completions): percentiles describe current
behaviour, not the session's entire history, and memory stays constant
under heavy traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque

#: completed-request latencies retained for percentile queries
LATENCY_WINDOW = 8192


class ServingMetrics:
    """Thread-safe counters for one serving server.

    Every counter is cumulative over the server's lifetime unless noted.
    ``queue_depth`` is instantaneous (requests currently waiting) and
    ``queue_depth_peak`` the high-water mark; ``coalesce_factor`` is the
    average number of requests each dispatched batch carried — the
    number micro-batching exists to push above 1.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: requests admitted to the micro-batch queue
        self.requests_enqueued = 0
        #: requests answered with a result
        self.requests_completed = 0
        #: requests answered with an error (isolation kept it per-request)
        self.requests_failed = 0
        #: requests rejected at admission (queue full / server closed)
        self.requests_rejected = 0
        #: coalesced batches dispatched to the batched scoring kernels
        self.batches_flushed = 0
        #: sum of batch sizes over all flushes (≥ batches_flushed)
        self.requests_coalesced = 0
        #: batches that degraded to per-request scoring (a flush fault or
        #: a poisoned request; siblings still got isolated answers)
        self.flush_fallbacks = 0
        #: requests currently waiting in the queue
        self.queue_depth = 0
        #: deepest the queue has ever been
        self.queue_depth_peak = 0
        #: sessions currently open / opened in total / rejected at the pool cap
        self.sessions_active = 0
        self.sessions_opened = 0
        self.sessions_rejected = 0
        #: snapshot reads served (score_table / summary / matrix reads)
        self.snapshot_reads = 0
        #: snapshot summary reads answered from the summary cache with
        #: zero rows scanned (cache entry matched the pinned version)
        self.snapshot_cache_hits = 0
        self._latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------- updates
    def record_enqueue(self, depth: int) -> None:
        with self._lock:
            self.requests_enqueued += 1
            self.queue_depth = depth
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth

    def record_dequeue(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    def record_rejected(self) -> None:
        with self._lock:
            self.requests_rejected += 1

    def record_flush(self, batch_size: int, degraded: bool = False) -> None:
        with self._lock:
            self.batches_flushed += 1
            self.requests_coalesced += batch_size
            if degraded:
                self.flush_fallbacks += 1

    def record_completion(self, latency_seconds: float, failed: bool) -> None:
        with self._lock:
            if failed:
                self.requests_failed += 1
            else:
                self.requests_completed += 1
            self._latencies.append(latency_seconds)

    def record_session(self, opened: bool) -> None:
        with self._lock:
            if opened:
                self.sessions_opened += 1
                self.sessions_active += 1
            else:
                self.sessions_active = max(0, self.sessions_active - 1)

    def record_session_rejected(self) -> None:
        with self._lock:
            self.sessions_rejected += 1

    def record_snapshot_read(self, cache_hit: bool = False) -> None:
        with self._lock:
            self.snapshot_reads += 1
            if cache_hit:
                self.snapshot_cache_hits += 1

    # ------------------------------------------------------------- queries
    @property
    def coalesce_factor(self) -> float:
        """Mean requests per dispatched batch (0.0 before any flush)."""
        with self._lock:
            if not self.batches_flushed:
                return 0.0
            return self.requests_coalesced / self.batches_flushed

    def latency_percentile(self, q: float) -> float:
        """The *q*-th latency percentile over the retained window.

        Nearest-rank on the sorted window; 0.0 when nothing completed
        yet.  ``q`` is in [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            window = sorted(self._latencies)
        if not window:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(window)))
        return window[rank - 1]

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50.0)

    def snapshot(self) -> dict[str, float | int]:
        """A consistent point-in-time dict of every counter (JSON-safe)."""
        with self._lock:
            window = sorted(self._latencies)
            state: dict[str, float | int] = {
                "requests_enqueued": self.requests_enqueued,
                "requests_completed": self.requests_completed,
                "requests_failed": self.requests_failed,
                "requests_rejected": self.requests_rejected,
                "batches_flushed": self.batches_flushed,
                "requests_coalesced": self.requests_coalesced,
                "flush_fallbacks": self.flush_fallbacks,
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
                "sessions_active": self.sessions_active,
                "sessions_opened": self.sessions_opened,
                "sessions_rejected": self.sessions_rejected,
                "snapshot_reads": self.snapshot_reads,
                "snapshot_cache_hits": self.snapshot_cache_hits,
            }
        state["coalesce_factor"] = (
            state["requests_coalesced"] / state["batches_flushed"]
            if state["batches_flushed"]
            else 0.0
        )
        for name, q in (("p50", 50.0), ("p99", 99.0)):
            if window:
                rank = max(1, math.ceil(q / 100.0 * len(window)))
                state[f"{name}_latency_seconds"] = window[rank - 1]
            else:
                state[f"{name}_latency_seconds"] = 0.0
        return state

    def __repr__(self) -> str:
        s = self.snapshot()
        return (
            f"ServingMetrics(enqueued={s['requests_enqueued']}, "
            f"completed={s['requests_completed']}, "
            f"failed={s['requests_failed']}, "
            f"batches={s['batches_flushed']}, "
            f"coalesce={s['coalesce_factor']:.2f}, "
            f"depth_peak={s['queue_depth_peak']}, "
            f"p99={s['p99_latency_seconds'] * 1e3:.3f}ms)"
        )
