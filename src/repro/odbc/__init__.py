"""The ODBC export simulator: the data path out of the DBMS."""

from repro.odbc.export import ExportReport, OdbcExporter

__all__ = ["ExportReport", "OdbcExporter"]
