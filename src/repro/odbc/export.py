"""ODBC export simulation.

The paper's external comparison point analyzes "data sets stored in text
files exported out from the DBMS with the ODBC interface", and its Table
2 shows those export times dwarfing everything else — up to two orders
of magnitude above the in-DBMS computation, which is the argument for
not analyzing data outside the database.

This module really exports: it serializes a table's physical rows to a
CSV file the external tool then parses.  *Time* is simulated with a
per-value serialization + LAN-transfer cost calibrated against the
paper's Table 2 (≈0.19 ms per value over 2007-era ODBC on a 100 Mbps
LAN), charged for the table's nominal row count.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.dbms.database import Database
from repro.errors import ExportError


@dataclass(frozen=True)
class OdbcCostParameters:
    """Per-value and per-row export costs, in simulated seconds."""

    #: serialize one value, push it through the driver and the LAN
    per_value: float = 1.875e-4
    #: per-row protocol overhead
    per_row: float = 1.5e-4
    #: connection setup / teardown
    per_export: float = 0.5


@dataclass(frozen=True)
class ExportReport:
    """What one export produced and what it cost."""

    path: Path
    physical_rows: int
    nominal_rows: float
    columns: int
    simulated_seconds: float


class OdbcExporter:
    """Exports tables from a :class:`Database` to CSV text files."""

    def __init__(self, params: OdbcCostParameters | None = None) -> None:
        self.params = params or OdbcCostParameters()

    def export_seconds(self, rows: float, columns: int) -> float:
        """The simulated cost of exporting *rows* × *columns* values."""
        p = self.params
        return p.per_export + rows * (p.per_row + columns * p.per_value)

    def export_table(
        self,
        db: Database,
        table_name: str,
        path: "str | Path",
        columns: "list[str] | None" = None,
    ) -> ExportReport:
        """Write the table's rows (selected *columns*, default all) as CSV
        with a header line; returns the report with simulated seconds."""
        table = db.table(table_name)
        names = list(columns) if columns is not None else list(
            table.schema.column_names
        )
        positions = [table.schema.position_of(name) for name in names]
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(names)
                for row in table.scan():
                    writer.writerow(
                        ["" if row[p] is None else row[p] for p in positions]
                    )
        except OSError as exc:
            raise ExportError(f"cannot export to {path}: {exc}") from exc
        physical = table.row_count
        nominal = table.nominal_rows
        seconds = self.export_seconds(nominal, len(names))
        return ExportReport(path, physical, nominal, len(names), seconds)
