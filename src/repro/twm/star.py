"""Star-schema specs: train on normalized tables without denormalizing.

The paper's workflows assume one wide data-set table, but warehouse
data lives normalized: a fact table of measures plus foreign keys into
dimension tables holding the remaining features.  Classically the miner
would materialize ``SELECT ... FROM fact JOIN dims`` into a wide table
first — paying |fact| × (1 + Σ|dim|) nested-loop input reads before a
single statistic is computed.

:class:`StarSchema` describes the normalized layout once — the fact
table, each dimension arm's ``fact.fk = dim.pk`` equation, and which
columns are features — and renders the join SQL every existing SQL
generator already accepts (they all splice a ``FROM {table}``
fragment).  The DBMS's factorized-join pass (:mod:`repro.dbms.sql.
factorize`) then answers those statements from per-base-table partial
aggregates, so the join is *never* materialized: model training reads
Σ|base tables| rows total.

:func:`reservoir_sample_star` is the seeding counterpart: a bounded,
deterministic sample of *joined* feature rows gathered with one
partition-parallel pass over the fact table plus client-side key
lookups into the (small) dimension tables — NULL and dangling foreign
keys drop the row exactly like the inner join would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.database import Database


@dataclass(frozen=True)
class StarDimension:
    """One dimension arm: ``fact.fact_key = table.dim_key``.

    ``features`` empty means "every numeric column except the key".
    """

    table: str
    fact_key: str
    dim_key: str
    features: "tuple[str, ...]" = ()


@dataclass(frozen=True)
class StarSchema:
    """A fact table joined to dimension tables on FK = PK equations.

    ``fact_features`` empty means "every numeric fact column except the
    primary key and the foreign keys".
    """

    fact: str
    dimensions: "tuple[StarDimension, ...]"
    fact_features: "tuple[str, ...]" = ()

    @classmethod
    def of(
        cls,
        fact: str,
        dims: Sequence[str],
        keys: Sequence["tuple[str, str]"],
        fact_features: Sequence[str] = (),
        dim_features: "Sequence[Sequence[str]] | None" = None,
    ) -> "StarSchema":
        """The ``(fact, dims, keys)`` spec form.

        *dims* lists dimension table names; *keys* pairs each with its
        ``(fact_fk, dim_pk)`` columns, positionally.
        """
        if len(dims) != len(keys):
            raise ModelError(
                f"star spec needs one (fact_key, dim_key) pair per "
                f"dimension table: {len(dims)} tables, {len(keys)} pairs"
            )
        if dim_features is not None and len(dim_features) != len(dims):
            raise ModelError(
                "dim_features must list one feature tuple per dimension "
                f"table: {len(dims)} tables, {len(dim_features)} tuples"
            )
        arms = tuple(
            StarDimension(
                table=name,
                fact_key=fact_key,
                dim_key=dim_key,
                features=tuple(dim_features[index]) if dim_features else (),
            )
            for index, (name, (fact_key, dim_key)) in enumerate(
                zip(dims, keys)
            )
        )
        return cls(fact=fact, dimensions=arms, fact_features=tuple(fact_features))

    # ----------------------------------------------------------------- SQL
    def from_sql(self) -> str:
        """The FROM fragment every SQL generator splices after ``FROM``."""
        pieces = [self.fact]
        for dim in self.dimensions:
            pieces.append(
                f"JOIN {dim.table} ON {self.fact}.{dim.fact_key} "
                f"= {dim.table}.{dim.dim_key}"
            )
        return " ".join(pieces)

    # ------------------------------------------------------------- columns
    def resolved_fact_features(self, db: "Database") -> "list[str]":
        if self.fact_features:
            return list(self.fact_features)
        schema = db.table(self.fact).schema
        excluded = {dim.fact_key.lower() for dim in self.dimensions}
        if schema.primary_key is not None:
            excluded.add(schema.primary_key.lower())
        return [
            name
            for name in schema.numeric_columns()
            if name.lower() not in excluded
        ]

    def resolved_dim_features(
        self, db: "Database", dim: StarDimension
    ) -> "list[str]":
        if dim.features:
            return list(dim.features)
        schema = db.table(dim.table).schema
        excluded = {dim.dim_key.lower()}
        if schema.primary_key is not None:
            excluded.add(schema.primary_key.lower())
        return [
            name
            for name in schema.numeric_columns()
            if name.lower() not in excluded
        ]

    def feature_columns(self, db: "Database") -> "list[str]":
        """Qualified feature columns: fact measures first, then each
        dimension arm's features, in arm order."""
        columns = [
            f"{self.fact}.{name}" for name in self.resolved_fact_features(db)
        ]
        for dim in self.dimensions:
            columns.extend(
                f"{dim.table}.{name}"
                for name in self.resolved_dim_features(db, dim)
            )
        return columns


def reservoir_sample_star(
    db: "Database",
    star: StarSchema,
    columns: Sequence[str],
    cap: int = 1024,
    seed: int = 0,
) -> np.ndarray:
    """A deterministic sample of up to *cap* complete *joined* rows.

    *columns* are qualified ``binding.column`` names from
    :meth:`StarSchema.feature_columns`.  One partition-parallel pass
    over the fact table keeps a per-partition Algorithm-R reservoir
    (seeded from ``(seed, partition id)``, identical at any worker
    count, mirroring :func:`repro.dbms.sampling.reservoir_sample`);
    dimension features come from client-side key maps over the small
    dimension tables.  Rows with a NULL/NaN/dangling foreign key or any
    NULL/NaN feature are skipped — the rows the inner join would drop
    or the aggregates would skip.
    """
    from repro.core.factorized import valid_key

    if cap < 1:
        raise ValueError(f"sample cap must be >= 1, got {cap}")
    fact = db.table(star.fact)
    fact_binding = star.fact.lower()

    # Key -> feature-tuple map per dimension arm (duplicate PKs cannot
    # occur: storage enforces PRIMARY KEY on insert).
    dim_maps: "list[dict]" = []
    dim_columns: "list[list[str]]" = []
    for dim in star.dimensions:
        table = db.table(dim.table)
        schema = table.schema
        key_position = schema.position_of(dim.dim_key)
        names = [
            column.split(".", 1)[1]
            for column in columns
            if column.split(".", 1)[0].lower() == dim.table.lower()
        ]
        positions = [schema.position_of(name) for name in names]
        mapping: dict = {}
        for row in table.rows():
            key = row[key_position]
            if valid_key(key):
                mapping[key] = tuple(row[position] for position in positions)
        dim_maps.append(mapping)
        dim_columns.append(names)

    fact_names = [
        column.split(".", 1)[1]
        for column in columns
        if column.split(".", 1)[0].lower() == fact_binding
    ]
    fact_positions = [fact.schema.position_of(name) for name in fact_names]
    key_positions = [
        fact.schema.position_of(dim.fact_key) for dim in star.dimensions
    ]

    # Gather values in *columns* order: map each output slot to its arm.
    slots: "list[tuple]" = []
    fact_cursor = 0
    dim_cursors = [0] * len(star.dimensions)
    for column in columns:
        binding = column.split(".", 1)[0].lower()
        if binding == fact_binding:
            slots.append(("fact", fact_positions[fact_cursor]))
            fact_cursor += 1
        else:
            for dim_index, dim in enumerate(star.dimensions):
                if dim.table.lower() == binding:
                    slots.append(("dim", dim_index, dim_cursors[dim_index]))
                    dim_cursors[dim_index] += 1
                    break
            else:
                raise ModelError(
                    f"column {column!r} does not belong to the star's fact "
                    "or dimension tables"
                )

    def incomplete(value: object) -> bool:
        return value is None or (
            isinstance(value, float) and math.isnan(value)
        )

    numbered = [
        (index, partition)
        for index, partition in enumerate(fact.partitions)
        if partition.row_count
    ]
    if not numbered:
        return np.empty((0, len(columns)))
    per_partition_cap = max(1, math.ceil(cap / len(numbered)))
    executor = db._executor
    faults = executor.faults

    def make_task(pid, partition):
        def task() -> "list[list[float]]":
            if faults.enabled:
                faults.fire("partition.scan", partition=pid)
            rng = np.random.default_rng([seed, pid])
            reservoir: "list[list[float]]" = []
            seen = 0
            for row in partition.rows():
                keys = []
                for position, mapping in zip(key_positions, dim_maps):
                    key = row[position]
                    if not valid_key(key) or key not in mapping:
                        keys = None
                        break
                    keys.append(key)
                if keys is None:
                    continue
                values = []
                for slot in slots:
                    if slot[0] == "fact":
                        values.append(row[slot[1]])
                    else:
                        _kind, dim_index, feature_index = slot
                        values.append(
                            dim_maps[dim_index][keys[dim_index]][feature_index]
                        )
                if any(incomplete(value) for value in values):
                    continue
                seen += 1
                if len(reservoir) < per_partition_cap:
                    reservoir.append([float(value) for value in values])
                else:
                    slot_index = int(rng.integers(seen))
                    if slot_index < per_partition_cap:
                        reservoir[slot_index] = [
                            float(value) for value in values
                        ]
            return reservoir

        return task

    tasks = [make_task(pid, partition) for pid, partition in numbered]
    partition_ids = [pid for pid, _ in numbered]
    reservoirs = executor.engine.map(
        tasks, idempotent=True, partition_ids=partition_ids
    )
    rows = [row for reservoir in reservoirs for row in reservoir]
    if not rows:
        return np.empty((0, len(columns)))
    return np.array(rows, dtype=float)
