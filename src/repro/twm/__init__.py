"""The Warehouse-Miner-style client: the library's high-level API."""

from repro.twm.miner import WarehouseMiner

__all__ = ["WarehouseMiner"]
