"""A Teradata-Warehouse-Miner-style client.

TWM, in the paper, is the client program that "automatically generates
SQL code based on user-specified parameters" and combines SQL queries,
UDFs and mathematical libraries.  :class:`WarehouseMiner` plays that
role here: it owns (or attaches to) a :class:`~repro.dbms.Database`,
registers the UDFs, generates the summary/scoring SQL, and builds the
four statistical models from the summaries — the complete build-and-
score workflow of the paper in a few method calls.

    miner = WarehouseMiner()
    miner.load_synthetic("x", n=10_000, d=8)
    model = miner.kmeans("x", k=4)
    scores = miner.scorer("x").score_clustering(4)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.blockwise import NlqBlockUdf, compute_nlq_blockwise
from repro.core.models.correlation import CorrelationModel
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.models.kmeans import (
    KMeansModel,
    _seed_centroids_dbms,
)
from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.nlq_udf import (
    DEFAULT_MAX_D,
    compute_nlq_udf,
    compute_nlq_udf_groups,
    nlq_call_sql,
    register_nlq_udfs,
)
from repro.core.scoring.scorer import ModelScorer
from repro.core.scoring.udfs import register_scoring_udfs
from repro.core.sqlgen import NlqSqlGenerator
from repro.core.summary import AugmentedSummary, MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.errors import ModelError
from repro.twm.star import StarSchema, reservoir_sample_star
from repro.workloads.generator import DatasetSample, MixtureSpec, load_dataset

#: sources every model builder accepts: a table name, or a normalized
#: star schema (trained through the factorized-join path, join never
#: materialized — see docs/factorized_learning.md)
Source = "str | StarSchema"


class WarehouseMiner:
    """High-level build-and-score client over the DBMS substrate."""

    def __init__(self, db: Database | None = None, amps: int = 20) -> None:
        self.db = db or Database(amps=amps)
        register_nlq_udfs(self.db)
        register_scoring_udfs(self.db)
        self.db.register_udf(NlqBlockUdf())

    # ----------------------------------------------------------------- data
    def load_synthetic(
        self,
        name: str,
        n: int,
        d: int,
        with_y: bool = False,
        row_scale: float = 1.0,
        **spec_overrides: float,
    ) -> DatasetSample:
        """Create and load the paper's synthetic mixture data set."""
        spec = MixtureSpec(d=d, **spec_overrides)
        return load_dataset(self.db, name, n, spec, with_y, row_scale)

    def star(
        self,
        fact: str,
        dims: Sequence[str],
        keys: "Sequence[tuple[str, str]]",
        **kwargs,
    ) -> StarSchema:
        """A ``(fact, dims, keys)`` star spec usable wherever a table
        name is (correlation/pca/regression/factor_analysis and the
        fused clustering builders) — trained without materializing the
        join.  *keys* pairs each dimension table with its ``(fact_fk,
        dim_pk)`` columns."""
        return StarSchema.of(fact, dims, keys, **kwargs)

    def dimensions_of(self, table: "str | StarSchema") -> list[str]:
        """The dimension columns of a data-set table: numeric columns
        excluding the point id and a dependent variable ``y``.  For a
        star schema: the qualified fact measures plus every dimension
        arm's features."""
        if isinstance(table, StarSchema):
            return table.feature_columns(self.db)
        schema = self.db.table(table).schema
        excluded = {"y"}
        if schema.primary_key is not None:
            excluded.add(schema.primary_key.lower())
        return [
            name
            for name in schema.numeric_columns()
            if name.lower() not in excluded
        ]

    # ------------------------------------------------------------- summaries
    def summarize(
        self,
        table: "str | StarSchema",
        dimensions: Sequence[str] | None = None,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
        method: str = "udf",
        passing: str = "list",
    ) -> SummaryStatistics:
        """One-scan (n, L, Q) via the aggregate UDF (default) or SQL.

        Dimensionality beyond the UDF's MAX_d automatically switches to
        the block-partitioned route of Table 6.  A :class:`StarSchema`
        source computes the same (n, L, Q) over the joined star without
        materializing the join — one scan per base table.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if isinstance(table, StarSchema):
            if method != "udf" or passing != "list":
                raise ModelError(
                    "star-schema summaries run through the list-form "
                    "aggregate UDF (the factorized-join route); got "
                    f"method={method!r}, passing={passing!r}"
                )
            if len(dims) > DEFAULT_MAX_D:
                raise ModelError(
                    f"star-schema summaries support up to d="
                    f"{DEFAULT_MAX_D} features (got {len(dims)})"
                )
            return compute_nlq_udf(
                self.db, table.from_sql(), dims, matrix_type, passing
            )
        if method == "sql":
            return NlqSqlGenerator(table, dims).compute(self.db, matrix_type)
        if method != "udf":
            raise ModelError(f"unknown summary method {method!r}")
        if len(dims) > DEFAULT_MAX_D:
            return compute_nlq_blockwise(self.db, table, dims)
        return compute_nlq_udf(self.db, table, dims, matrix_type, passing)

    def summarize_groups(
        self,
        table: str,
        group_by: str,
        dimensions: Sequence[str] | None = None,
        matrix_type: MatrixType = MatrixType.DIAGONAL,
    ) -> "dict[object, SummaryStatistics]":
        """Per-group (n, L, Q) — the paper's sub-model query (Table 5):
        one GROUP BY aggregate scan yields a separate summary per value
        of *group_by* (a column or expression)."""
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        return compute_nlq_udf_groups(self.db, table, dims, group_by, matrix_type)

    def sub_models(
        self,
        table: str,
        group_by: str,
        technique: str = "correlation",
        dimensions: Sequence[str] | None = None,
        **model_kwargs,
    ) -> "dict[object, object]":
        """One model per group from a single GROUP BY scan.

        The paper motivates the GROUP BY aggregate UDF with "get several
        sub-models from the same data set based on different grouping
        columns"; this is that workflow.  *technique* is ``correlation``
        or ``pca`` (both need only a group's (n, L, Q)); groups whose
        summaries cannot support the model (too few rows, zero variance)
        are skipped rather than failing the whole batch.
        """
        if technique not in ("correlation", "pca"):
            raise ModelError(
                f"unsupported sub-model technique {technique!r} "
                "(correlation, pca)"
            )
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        groups = self.summarize_groups(
            table, group_by, dims, MatrixType.TRIANGULAR
        )
        models: dict[object, object] = {}
        for key, stats in groups.items():
            try:
                if technique == "correlation":
                    models[key] = CorrelationModel.from_summary(stats, dims)
                else:
                    models[key] = PCAModel.from_summary(
                        stats, **{"k": min(2, stats.d), **model_kwargs}
                    )
            except ModelError:
                continue
        return models

    def profile(
        self, table: str, dimensions: Sequence[str] | None = None
    ) -> "dict[str, object]":
        """Per-dimension mean/variance/extrema from one scan (the UDF's
        min/max tracking, used for outliers and histograms)."""
        from repro.core.profiling import profile_table

        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        return profile_table(self.db, table, dims)

    # ---------------------------------------------------------------- models
    def correlation(
        self,
        table: "str | StarSchema",
        dimensions: Sequence[str] | None = None,
        **kwargs,
    ) -> CorrelationModel:
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        stats = self.summarize(table, dims, **kwargs)
        return CorrelationModel.from_summary(stats, dims)

    def linear_regression(
        self,
        table: "str | StarSchema",
        target: str = "y",
        dimensions: Sequence[str] | None = None,
        method: str = "udf",
    ) -> LinearRegressionModel:
        """Fit Y = βᵀX + β₀ from one scan over Z = (1, X, Y).

        The constant dimension is passed as the literal ``1.0`` in the
        generated query, so Q′ = Z Zᵀ comes out of the same aggregate.
        Over a :class:`StarSchema` the target must be a qualified fact
        column (e.g. ``"sales.amount"``) and the single scan becomes
        one factorized scan per base table.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if isinstance(table, StarSchema):
            if "." not in target:
                target = f"{table.fact}.{target}"
            dims = [dim for dim in dims if dim.lower() != target.lower()]
            augmented_dims = ["1.0", *dims, target]
            if method != "udf":
                raise ModelError(
                    "star-schema regression runs through the aggregate "
                    f"UDF; got method={method!r}"
                )
            stats = compute_nlq_udf(self.db, table.from_sql(), augmented_dims)
            return LinearRegressionModel.from_summary(AugmentedSummary(stats))
        augmented_dims = ["1.0", *dims, target]
        if method == "sql":
            stats = NlqSqlGenerator(table, augmented_dims).compute(
                self.db, MatrixType.TRIANGULAR
            )
        else:
            stats = compute_nlq_udf(self.db, table, augmented_dims)
        return LinearRegressionModel.from_summary(AugmentedSummary(stats))

    def pca(
        self,
        table: "str | StarSchema",
        k: int,
        dimensions: Sequence[str] | None = None,
        use_correlation: bool = True,
        **kwargs,
    ) -> PCAModel:
        stats = self.summarize(table, dimensions, **kwargs)
        return PCAModel.from_summary(stats, k, use_correlation)

    def factor_analysis(
        self,
        table: "str | StarSchema",
        k: int,
        dimensions: Sequence[str] | None = None,
        **kwargs,
    ) -> FactorAnalysisModel:
        stats = self.summarize(table, dimensions, **kwargs)
        return FactorAnalysisModel.from_summary(stats, k)

    def build_all_models(
        self,
        table: str,
        target: str = "y",
        k: int = 2,
        dimensions: Sequence[str] | None = None,
    ) -> "dict[str, object]":
        """Correlation + PCA + factor analysis + regression, ONE scan.

        All four techniques consume sufficient statistics, so their four
        summary statements are batched through
        :meth:`~repro.dbms.database.Database.execute_batch`: the rewrite
        pass proves they share a scan of *table* (three are the *same*
        statement and collapse to one accumulation; regression's
        augmented Z = (1, X, y) summary rides the same pass), and each
        model comes out bit-identical to its serial build.

        Returns ``{"correlation", "pca", "factor_analysis",
        "regression"}``.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        augmented = ["1.0", *dims, target]
        if len(dims) > DEFAULT_MAX_D or len(augmented) > DEFAULT_MAX_D:
            raise ModelError(
                f"build_all_models supports up to d={DEFAULT_MAX_D - 2} "
                f"dimensions (got {len(dims)})"
            )
        statements = [
            nlq_call_sql(table, dims),       # correlation
            nlq_call_sql(table, dims),       # pca — same summary
            nlq_call_sql(table, dims),       # factor analysis — same
            nlq_call_sql(table, augmented),  # regression over Z
        ]
        results = self.db.execute_batch(statements)
        decision = self.db._executor.last_batch_decision
        if decision is None or not decision.consolidated:
            reason = decision.reason if decision is not None else "no decision"
            raise ModelError(
                f"expected a consolidated multi-model scan of {table!r}; "
                f"rewrite refused: {reason}"
            )

        def stats_of(result, width: int) -> SummaryStatistics:
            payload = result.scalar()
            if payload is None:
                return SummaryStatistics.zeros(width, MatrixType.TRIANGULAR)
            from repro.core.packing import unpack_summary

            return unpack_summary(payload)

        base = stats_of(results[0], len(dims))
        augmented_stats = stats_of(results[3], len(augmented))
        return {
            "correlation": CorrelationModel.from_summary(base, dims),
            "pca": PCAModel.from_summary(base, k),
            "factor_analysis": FactorAnalysisModel.from_summary(base, k),
            "regression": LinearRegressionModel.from_summary(
                AugmentedSummary(augmented_stats)
            ),
        }

    def kmeans(
        self,
        table: "str | StarSchema",
        k: int,
        dimensions: Sequence[str] | None = None,
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        seed: int = 0,
        method: str = "udf",
    ) -> KMeansModel:
        """K-means driven entirely through the DBMS.

        Each iteration is one GROUP BY aggregate query: rows are grouped
        by their nearest current centroid (inlined as literals, the way
        a generated scoring query embeds the model) and per-cluster
        (N_j, L_j, Q_j) come back in one scan, from which C, R, W are
        recomputed.

        *method* selects the assignment/summary machinery:

        * ``"fused"`` — one scan per iteration: the ``kmeansiter``
          aggregate UDF fuses assignment and per-cluster summaries
          (see ``docs/clustering.md``);
        * ``"udf"`` — group by ``clusterscore(kmeansdistance(...), ...)``
          and aggregate with the diagonal nLQ UDF;
        * ``"sql"`` — no UDFs at all: the nearest centroid is a generated
          CASE over inline distance expressions and the summaries come
          from the plain-SQL GROUP BY query (the route of the author's
          SQL K-means work, reference [15] of the paper).
        """
        if method not in ("fused", "udf", "sql"):
            raise ModelError(f"unknown kmeans method {method!r}")
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if isinstance(table, StarSchema):
            if method != "fused":
                raise ModelError(
                    "star-schema k-means runs through the fused "
                    f"kmeansiter UDF; got method={method!r}"
                )
            return self._kmeans_star(
                table, k, dims, max_iterations, tolerance, seed
            )
        # Seed from a bounded NULL-filtered reservoir sample gathered
        # through the engine (every partition contributes, so the seeds
        # aren't biased toward the first partitions' rows) instead of
        # materializing the whole table client-side.
        centroids = _seed_centroids_dbms(self.db, table, dims, k, seed)
        fused_udf = None
        fused_sql = None
        if method == "fused":
            from repro.core.fused import fused_call_sql, register_fused_udfs

            fused_udf = register_fused_udfs(self.db)["kmeansiter"]
            fused_sql = fused_call_sql("kmeansiter", table, dims)
        model = KMeansModel(centroids, np.zeros_like(centroids), np.zeros(k))
        for iteration in range(1, max_iterations + 1):
            if method == "fused":
                from repro.core.fused import unpack_fused_payload

                fused_udf.set_centroids(model.centroids)
                payload = self.db.execute(fused_sql).scalar()
                groups, _ = unpack_fused_payload(payload)
            elif method == "udf":
                group_expr = self._assignment_expression(dims, model.centroids)
                groups = compute_nlq_udf_groups(
                    self.db, table, dims, group_expr, MatrixType.DIAGONAL
                )
            else:
                group_expr = self._assignment_case_expression(
                    dims, model.centroids
                )
                groups = NlqSqlGenerator(table, dims).compute_groups(
                    self.db, group_expr, MatrixType.DIAGONAL
                )
            previous = model.centroids.copy()
            model = KMeansModel.from_group_summaries(groups, k, previous)
            model.iterations = iteration
            shift = float(np.max(np.abs(model.centroids - previous)))
            if shift <= tolerance:
                break
        return model

    def _kmeans_star(
        self,
        star: StarSchema,
        k: int,
        dims: "list[str]",
        max_iterations: int,
        tolerance: float,
        seed: int,
    ) -> KMeansModel:
        """Fused k-means over a star: seed from a joined reservoir
        sample, then one factorized ``kmeansiter`` scan per iteration —
        Σ|base tables| rows read, join never materialized (the Rk-means
        observation: the iteration only needs per-cluster (N, L, Q))."""
        from repro.core.fused import (
            fused_call_sql,
            register_fused_udfs,
            unpack_fused_payload,
        )
        from repro.core.models.kmeans import SEED_SAMPLE_CAP, _plus_plus_init

        sample = reservoir_sample_star(
            self.db, star, dims, cap=SEED_SAMPLE_CAP, seed=seed
        )
        if sample.shape[0] < k:
            raise ModelError(
                f"star over {star.fact!r} joins {sample.shape[0]} complete "
                f"rows over {dims}; need >= k={k}"
            )
        centroids = _plus_plus_init(sample, k, np.random.default_rng(seed))
        fused_udf = register_fused_udfs(self.db)["kmeansiter"]
        fused_sql = fused_call_sql("kmeansiter", star.from_sql(), dims)
        model = KMeansModel(centroids, np.zeros_like(centroids), np.zeros(k))
        for iteration in range(1, max_iterations + 1):
            fused_udf.set_centroids(model.centroids)
            payload = self.db.execute(fused_sql).scalar()
            groups, _ = unpack_fused_payload(payload)
            previous = model.centroids.copy()
            model = KMeansModel.from_group_summaries(groups, k, previous)
            model.iterations = iteration
            shift = float(np.max(np.abs(model.centroids - previous)))
            if shift <= tolerance:
                break
        return model

    def naive_bayes(
        self,
        table: str,
        label: str = "label",
        dimensions: Sequence[str] | None = None,
    ) -> "NaiveBayesModel":
        """Gaussian Naive Bayes from one GROUP BY aggregate query.

        *label* is the integer class column; per-class (N, L, Q-diag)
        summaries are gathered with the diagonal nLQ UDF grouped by it —
        the sufficient-statistics classification route of [9].
        """
        from repro.core.models.naive_bayes import NaiveBayesModel

        dims = list(dimensions) if dimensions is not None \
            else [d for d in self.dimensions_of(table) if d != label]
        groups = compute_nlq_udf_groups(
            self.db, table, dims, label, MatrixType.DIAGONAL
        )
        return NaiveBayesModel.from_class_summaries(
            self._class_summaries(groups, label)
        )

    def lda(
        self,
        table: str,
        label: str = "label",
        dimensions: Sequence[str] | None = None,
    ) -> "LdaModel":
        """Linear discriminant analysis from one GROUP BY query with a
        triangular Q (the pooled covariance needs cross-products)."""
        from repro.core.models.lda import LdaModel

        dims = list(dimensions) if dimensions is not None \
            else [d for d in self.dimensions_of(table) if d != label]
        groups = compute_nlq_udf_groups(
            self.db, table, dims, label, MatrixType.TRIANGULAR
        )
        return LdaModel.from_class_summaries(
            self._class_summaries(groups, label)
        )

    def gaussian_mixture(
        self,
        table: "str | StarSchema",
        k: int,
        dimensions: Sequence[str] | None = None,
        method: str = "matrix",
        **kwargs,
    ) -> GaussianMixtureModel:
        """EM clustering on the table's points.

        ``method="matrix"`` runs the in-memory reference fit;
        ``method="fused"`` drives the DBMS with one fused ``emiter``
        scan per iteration (see ``docs/clustering.md``).  A
        :class:`StarSchema` source requires ``method="fused"`` and
        runs each scan factorized over the base tables."""
        if method not in ("matrix", "fused"):
            raise ModelError(f"unknown gaussian_mixture method {method!r}")
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if isinstance(table, StarSchema):
            if method != "fused":
                raise ModelError(
                    "star-schema EM runs through the fused emiter UDF; "
                    f"got method={method!r}"
                )
            return self._gaussian_mixture_star(table, k, dims, **kwargs)
        if method == "fused":
            return GaussianMixtureModel.fit_dbms(
                self.db, table, dims, k, **kwargs
            )
        matrix = self.db.table(table).numeric_matrix(dims)
        return GaussianMixtureModel.fit_matrix(matrix, k, **kwargs)

    def _gaussian_mixture_star(
        self,
        star: StarSchema,
        k: int,
        dims: "list[str]",
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        variance_floor: float = 1e-6,
        seed: int = 0,
    ) -> GaussianMixtureModel:
        """DBMS-driven EM over a star, one factorized fused scan per
        iteration.  Mirrors :meth:`GaussianMixtureModel.fit_dbms` but
        initializes from a bounded joined reservoir sample instead of
        the (never materialized) wide matrix."""
        from repro.core.fused import (
            fused_call_sql,
            register_fused_udfs,
            unpack_fused_payload,
        )
        from repro.core.models.kmeans import SEED_SAMPLE_CAP

        udf = register_fused_udfs(self.db)["emiter"]
        sample = reservoir_sample_star(
            self.db, star, dims, cap=SEED_SAMPLE_CAP, seed=seed
        )
        n_sample, d = sample.shape
        if not 1 <= k <= n_sample:
            raise ModelError(
                f"k must be in [1, {n_sample}] (complete sampled join "
                f"rows), got {k}"
            )
        rng = np.random.default_rng(seed)
        means = sample[rng.choice(n_sample, size=k, replace=False)].astype(
            float
        )
        global_variance = np.maximum(sample.var(axis=0), variance_floor)
        variances = np.tile(global_variance, (k, 1))
        weights = np.full(k, 1.0 / k)
        model = GaussianMixtureModel(means, variances, weights)
        sql = fused_call_sql("emiter", star.from_sql(), dims)

        n = None  # |join| comes back with the first scan's Nj
        previous = -np.inf
        for iteration in range(1, max_iterations + 1):
            udf.set_model(model)
            payload = self.db.execute(sql).scalar()
            groups, log_likelihood = unpack_fused_payload(payload)
            Nj = np.zeros(k)
            Lj = np.zeros((k, d))
            Qj = np.zeros((k, d))
            for j, stats in groups.items():
                Nj[j - 1] = stats.n
                Lj[j - 1] = stats.L
                Qj[j - 1] = np.diag(stats.Q)
            if n is None:
                n = float(Nj.sum())
            if np.any(Nj <= 0):
                raise ModelError(
                    "a mixture component collapsed to zero weight"
                )
            means = Lj / Nj[:, None]
            variances = np.maximum(
                Qj / Nj[:, None] - means**2, variance_floor
            )
            weights = Nj / n
            model = GaussianMixtureModel(
                means, variances, weights, log_likelihood, iteration
            )
            if np.isfinite(previous) and (
                log_likelihood - previous
                <= tolerance * max(abs(previous), 1.0)
            ):
                break
            previous = log_likelihood
        # One more fused scan evaluates the log-likelihood the *final*
        # parameters achieve (the loop's value predates its M step).
        udf.set_model(model)
        _, final_log_likelihood = unpack_fused_payload(
            self.db.execute(sql).scalar()
        )
        model.log_likelihood = final_log_likelihood
        return model

    # --------------------------------------------------------------- scoring
    def scorer(
        self, table: str, dimensions: Sequence[str] | None = None
    ) -> ModelScorer:
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        id_column = self.db.table(table).schema.primary_key or "i"
        return ModelScorer(self.db, table, dims, id_column)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _class_summaries(
        groups: "dict[object, SummaryStatistics]", label: str
    ) -> "dict[int, SummaryStatistics]":
        """Per-class summaries keyed by validated integer class.

        NULL labels are skipped (matching the NULL-skip semantics of the
        aggregate UDF itself — an unlabeled row belongs to no class);
        any non-integral label is a clear :class:`ModelError` instead of
        a ``TypeError``/silent truncation deep in ``int()``.
        """
        summaries: dict[int, SummaryStatistics] = {}
        for key, stats in groups.items():
            # NULL labels group under None on the row path and NaN on
            # the vector path; both mean "unlabeled row".
            if key is None or (isinstance(key, float) and np.isnan(key)):
                continue
            if isinstance(key, bool) or not isinstance(key, (int, float)):
                raise ModelError(
                    f"label column {label!r} must hold integer classes; "
                    f"got {key!r}"
                )
            if isinstance(key, float):
                if not key.is_integer():
                    raise ModelError(
                        f"label column {label!r} must hold integer "
                        f"classes; got non-integral value {key!r}"
                    )
                key = int(key)
            summaries[key] = stats
        return summaries

    @staticmethod
    def _assignment_expression(
        dimensions: Sequence[str], centroids: np.ndarray
    ) -> str:
        from repro.core.fused import assignment_expression

        return assignment_expression(dimensions, centroids)

    @staticmethod
    def _assignment_case_expression(
        dimensions: Sequence[str], centroids: np.ndarray
    ) -> str:
        """Nearest-centroid subscript as pure SQL arithmetic: inline
        squared-distance expressions compared pairwise inside a CASE."""
        distance_exprs = []
        for centroid in centroids:
            terms = [
                f"({dim} - {float(value)!r}) * ({dim} - {float(value)!r})"
                for dim, value in zip(dimensions, centroid)
            ]
            distance_exprs.append("(" + " + ".join(terms) + ")")
        k = len(distance_exprs)
        whens = []
        for j in range(k):
            conditions = [
                f"{distance_exprs[j]} <= {distance_exprs[other]}"
                for other in range(k)
                if other != j
            ]
            condition = " AND ".join(conditions) if conditions else "1 = 1"
            whens.append(f"WHEN {condition} THEN {j + 1}")
        return f"CASE {' '.join(whens)} END"
