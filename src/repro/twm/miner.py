"""A Teradata-Warehouse-Miner-style client.

TWM, in the paper, is the client program that "automatically generates
SQL code based on user-specified parameters" and combines SQL queries,
UDFs and mathematical libraries.  :class:`WarehouseMiner` plays that
role here: it owns (or attaches to) a :class:`~repro.dbms.Database`,
registers the UDFs, generates the summary/scoring SQL, and builds the
four statistical models from the summaries — the complete build-and-
score workflow of the paper in a few method calls.

    miner = WarehouseMiner()
    miner.load_synthetic("x", n=10_000, d=8)
    model = miner.kmeans("x", k=4)
    scores = miner.scorer("x").score_clustering(4)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.blockwise import NlqBlockUdf, compute_nlq_blockwise
from repro.core.models.correlation import CorrelationModel
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.models.kmeans import (
    KMeansModel,
    _seed_centroids_dbms,
)
from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.nlq_udf import (
    DEFAULT_MAX_D,
    compute_nlq_udf,
    compute_nlq_udf_groups,
    nlq_call_sql,
    register_nlq_udfs,
)
from repro.core.scoring.scorer import ModelScorer
from repro.core.scoring.udfs import register_scoring_udfs
from repro.core.sqlgen import NlqSqlGenerator
from repro.core.summary import AugmentedSummary, MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.errors import ModelError
from repro.workloads.generator import DatasetSample, MixtureSpec, load_dataset


class WarehouseMiner:
    """High-level build-and-score client over the DBMS substrate."""

    def __init__(self, db: Database | None = None, amps: int = 20) -> None:
        self.db = db or Database(amps=amps)
        register_nlq_udfs(self.db)
        register_scoring_udfs(self.db)
        self.db.register_udf(NlqBlockUdf())

    # ----------------------------------------------------------------- data
    def load_synthetic(
        self,
        name: str,
        n: int,
        d: int,
        with_y: bool = False,
        row_scale: float = 1.0,
        **spec_overrides: float,
    ) -> DatasetSample:
        """Create and load the paper's synthetic mixture data set."""
        spec = MixtureSpec(d=d, **spec_overrides)
        return load_dataset(self.db, name, n, spec, with_y, row_scale)

    def dimensions_of(self, table: str) -> list[str]:
        """The dimension columns of a data-set table: numeric columns
        excluding the point id and a dependent variable ``y``."""
        schema = self.db.table(table).schema
        excluded = {"y"}
        if schema.primary_key is not None:
            excluded.add(schema.primary_key.lower())
        return [
            name
            for name in schema.numeric_columns()
            if name.lower() not in excluded
        ]

    # ------------------------------------------------------------- summaries
    def summarize(
        self,
        table: str,
        dimensions: Sequence[str] | None = None,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
        method: str = "udf",
        passing: str = "list",
    ) -> SummaryStatistics:
        """One-scan (n, L, Q) via the aggregate UDF (default) or SQL.

        Dimensionality beyond the UDF's MAX_d automatically switches to
        the block-partitioned route of Table 6.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if method == "sql":
            return NlqSqlGenerator(table, dims).compute(self.db, matrix_type)
        if method != "udf":
            raise ModelError(f"unknown summary method {method!r}")
        if len(dims) > DEFAULT_MAX_D:
            return compute_nlq_blockwise(self.db, table, dims)
        return compute_nlq_udf(self.db, table, dims, matrix_type, passing)

    def summarize_groups(
        self,
        table: str,
        group_by: str,
        dimensions: Sequence[str] | None = None,
        matrix_type: MatrixType = MatrixType.DIAGONAL,
    ) -> "dict[object, SummaryStatistics]":
        """Per-group (n, L, Q) — the paper's sub-model query (Table 5):
        one GROUP BY aggregate scan yields a separate summary per value
        of *group_by* (a column or expression)."""
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        return compute_nlq_udf_groups(self.db, table, dims, group_by, matrix_type)

    def sub_models(
        self,
        table: str,
        group_by: str,
        technique: str = "correlation",
        dimensions: Sequence[str] | None = None,
        **model_kwargs,
    ) -> "dict[object, object]":
        """One model per group from a single GROUP BY scan.

        The paper motivates the GROUP BY aggregate UDF with "get several
        sub-models from the same data set based on different grouping
        columns"; this is that workflow.  *technique* is ``correlation``
        or ``pca`` (both need only a group's (n, L, Q)); groups whose
        summaries cannot support the model (too few rows, zero variance)
        are skipped rather than failing the whole batch.
        """
        if technique not in ("correlation", "pca"):
            raise ModelError(
                f"unsupported sub-model technique {technique!r} "
                "(correlation, pca)"
            )
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        groups = self.summarize_groups(
            table, group_by, dims, MatrixType.TRIANGULAR
        )
        models: dict[object, object] = {}
        for key, stats in groups.items():
            try:
                if technique == "correlation":
                    models[key] = CorrelationModel.from_summary(stats, dims)
                else:
                    models[key] = PCAModel.from_summary(
                        stats, **{"k": min(2, stats.d), **model_kwargs}
                    )
            except ModelError:
                continue
        return models

    def profile(
        self, table: str, dimensions: Sequence[str] | None = None
    ) -> "dict[str, object]":
        """Per-dimension mean/variance/extrema from one scan (the UDF's
        min/max tracking, used for outliers and histograms)."""
        from repro.core.profiling import profile_table

        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        return profile_table(self.db, table, dims)

    # ---------------------------------------------------------------- models
    def correlation(
        self, table: str, dimensions: Sequence[str] | None = None, **kwargs
    ) -> CorrelationModel:
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        stats = self.summarize(table, dims, **kwargs)
        return CorrelationModel.from_summary(stats, dims)

    def linear_regression(
        self,
        table: str,
        target: str = "y",
        dimensions: Sequence[str] | None = None,
        method: str = "udf",
    ) -> LinearRegressionModel:
        """Fit Y = βᵀX + β₀ from one scan over Z = (1, X, Y).

        The constant dimension is passed as the literal ``1.0`` in the
        generated query, so Q′ = Z Zᵀ comes out of the same aggregate.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        augmented_dims = ["1.0", *dims, target]
        if method == "sql":
            stats = NlqSqlGenerator(table, augmented_dims).compute(
                self.db, MatrixType.TRIANGULAR
            )
        else:
            stats = compute_nlq_udf(self.db, table, augmented_dims)
        return LinearRegressionModel.from_summary(AugmentedSummary(stats))

    def pca(
        self,
        table: str,
        k: int,
        dimensions: Sequence[str] | None = None,
        use_correlation: bool = True,
        **kwargs,
    ) -> PCAModel:
        stats = self.summarize(table, dimensions, **kwargs)
        return PCAModel.from_summary(stats, k, use_correlation)

    def factor_analysis(
        self,
        table: str,
        k: int,
        dimensions: Sequence[str] | None = None,
        **kwargs,
    ) -> FactorAnalysisModel:
        stats = self.summarize(table, dimensions, **kwargs)
        return FactorAnalysisModel.from_summary(stats, k)

    def build_all_models(
        self,
        table: str,
        target: str = "y",
        k: int = 2,
        dimensions: Sequence[str] | None = None,
    ) -> "dict[str, object]":
        """Correlation + PCA + factor analysis + regression, ONE scan.

        All four techniques consume sufficient statistics, so their four
        summary statements are batched through
        :meth:`~repro.dbms.database.Database.execute_batch`: the rewrite
        pass proves they share a scan of *table* (three are the *same*
        statement and collapse to one accumulation; regression's
        augmented Z = (1, X, y) summary rides the same pass), and each
        model comes out bit-identical to its serial build.

        Returns ``{"correlation", "pca", "factor_analysis",
        "regression"}``.
        """
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        augmented = ["1.0", *dims, target]
        if len(dims) > DEFAULT_MAX_D or len(augmented) > DEFAULT_MAX_D:
            raise ModelError(
                f"build_all_models supports up to d={DEFAULT_MAX_D - 2} "
                f"dimensions (got {len(dims)})"
            )
        statements = [
            nlq_call_sql(table, dims),       # correlation
            nlq_call_sql(table, dims),       # pca — same summary
            nlq_call_sql(table, dims),       # factor analysis — same
            nlq_call_sql(table, augmented),  # regression over Z
        ]
        results = self.db.execute_batch(statements)
        decision = self.db._executor.last_batch_decision
        if decision is None or not decision.consolidated:
            reason = decision.reason if decision is not None else "no decision"
            raise ModelError(
                f"expected a consolidated multi-model scan of {table!r}; "
                f"rewrite refused: {reason}"
            )

        def stats_of(result, width: int) -> SummaryStatistics:
            payload = result.scalar()
            if payload is None:
                return SummaryStatistics.zeros(width, MatrixType.TRIANGULAR)
            from repro.core.packing import unpack_summary

            return unpack_summary(payload)

        base = stats_of(results[0], len(dims))
        augmented_stats = stats_of(results[3], len(augmented))
        return {
            "correlation": CorrelationModel.from_summary(base, dims),
            "pca": PCAModel.from_summary(base, k),
            "factor_analysis": FactorAnalysisModel.from_summary(base, k),
            "regression": LinearRegressionModel.from_summary(
                AugmentedSummary(augmented_stats)
            ),
        }

    def kmeans(
        self,
        table: str,
        k: int,
        dimensions: Sequence[str] | None = None,
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        seed: int = 0,
        method: str = "udf",
    ) -> KMeansModel:
        """K-means driven entirely through the DBMS.

        Each iteration is one GROUP BY aggregate query: rows are grouped
        by their nearest current centroid (inlined as literals, the way
        a generated scoring query embeds the model) and per-cluster
        (N_j, L_j, Q_j) come back in one scan, from which C, R, W are
        recomputed.

        *method* selects the assignment/summary machinery:

        * ``"fused"`` — one scan per iteration: the ``kmeansiter``
          aggregate UDF fuses assignment and per-cluster summaries
          (see ``docs/clustering.md``);
        * ``"udf"`` — group by ``clusterscore(kmeansdistance(...), ...)``
          and aggregate with the diagonal nLQ UDF;
        * ``"sql"`` — no UDFs at all: the nearest centroid is a generated
          CASE over inline distance expressions and the summaries come
          from the plain-SQL GROUP BY query (the route of the author's
          SQL K-means work, reference [15] of the paper).
        """
        if method not in ("fused", "udf", "sql"):
            raise ModelError(f"unknown kmeans method {method!r}")
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        # Seed from a bounded NULL-filtered reservoir sample gathered
        # through the engine (every partition contributes, so the seeds
        # aren't biased toward the first partitions' rows) instead of
        # materializing the whole table client-side.
        centroids = _seed_centroids_dbms(self.db, table, dims, k, seed)
        fused_udf = None
        fused_sql = None
        if method == "fused":
            from repro.core.fused import fused_call_sql, register_fused_udfs

            fused_udf = register_fused_udfs(self.db)["kmeansiter"]
            fused_sql = fused_call_sql("kmeansiter", table, dims)
        model = KMeansModel(centroids, np.zeros_like(centroids), np.zeros(k))
        for iteration in range(1, max_iterations + 1):
            if method == "fused":
                from repro.core.fused import unpack_fused_payload

                fused_udf.set_centroids(model.centroids)
                payload = self.db.execute(fused_sql).scalar()
                groups, _ = unpack_fused_payload(payload)
            elif method == "udf":
                group_expr = self._assignment_expression(dims, model.centroids)
                groups = compute_nlq_udf_groups(
                    self.db, table, dims, group_expr, MatrixType.DIAGONAL
                )
            else:
                group_expr = self._assignment_case_expression(
                    dims, model.centroids
                )
                groups = NlqSqlGenerator(table, dims).compute_groups(
                    self.db, group_expr, MatrixType.DIAGONAL
                )
            previous = model.centroids.copy()
            model = KMeansModel.from_group_summaries(groups, k, previous)
            model.iterations = iteration
            shift = float(np.max(np.abs(model.centroids - previous)))
            if shift <= tolerance:
                break
        return model

    def naive_bayes(
        self,
        table: str,
        label: str = "label",
        dimensions: Sequence[str] | None = None,
    ) -> "NaiveBayesModel":
        """Gaussian Naive Bayes from one GROUP BY aggregate query.

        *label* is the integer class column; per-class (N, L, Q-diag)
        summaries are gathered with the diagonal nLQ UDF grouped by it —
        the sufficient-statistics classification route of [9].
        """
        from repro.core.models.naive_bayes import NaiveBayesModel

        dims = list(dimensions) if dimensions is not None \
            else [d for d in self.dimensions_of(table) if d != label]
        groups = compute_nlq_udf_groups(
            self.db, table, dims, label, MatrixType.DIAGONAL
        )
        return NaiveBayesModel.from_class_summaries(
            self._class_summaries(groups, label)
        )

    def lda(
        self,
        table: str,
        label: str = "label",
        dimensions: Sequence[str] | None = None,
    ) -> "LdaModel":
        """Linear discriminant analysis from one GROUP BY query with a
        triangular Q (the pooled covariance needs cross-products)."""
        from repro.core.models.lda import LdaModel

        dims = list(dimensions) if dimensions is not None \
            else [d for d in self.dimensions_of(table) if d != label]
        groups = compute_nlq_udf_groups(
            self.db, table, dims, label, MatrixType.TRIANGULAR
        )
        return LdaModel.from_class_summaries(
            self._class_summaries(groups, label)
        )

    def gaussian_mixture(
        self,
        table: str,
        k: int,
        dimensions: Sequence[str] | None = None,
        method: str = "matrix",
        **kwargs,
    ) -> GaussianMixtureModel:
        """EM clustering on the table's points.

        ``method="matrix"`` runs the in-memory reference fit;
        ``method="fused"`` drives the DBMS with one fused ``emiter``
        scan per iteration (see ``docs/clustering.md``)."""
        if method not in ("matrix", "fused"):
            raise ModelError(f"unknown gaussian_mixture method {method!r}")
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        if method == "fused":
            return GaussianMixtureModel.fit_dbms(
                self.db, table, dims, k, **kwargs
            )
        matrix = self.db.table(table).numeric_matrix(dims)
        return GaussianMixtureModel.fit_matrix(matrix, k, **kwargs)

    # --------------------------------------------------------------- scoring
    def scorer(
        self, table: str, dimensions: Sequence[str] | None = None
    ) -> ModelScorer:
        dims = list(dimensions) if dimensions is not None \
            else self.dimensions_of(table)
        id_column = self.db.table(table).schema.primary_key or "i"
        return ModelScorer(self.db, table, dims, id_column)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _class_summaries(
        groups: "dict[object, SummaryStatistics]", label: str
    ) -> "dict[int, SummaryStatistics]":
        """Per-class summaries keyed by validated integer class.

        NULL labels are skipped (matching the NULL-skip semantics of the
        aggregate UDF itself — an unlabeled row belongs to no class);
        any non-integral label is a clear :class:`ModelError` instead of
        a ``TypeError``/silent truncation deep in ``int()``.
        """
        summaries: dict[int, SummaryStatistics] = {}
        for key, stats in groups.items():
            # NULL labels group under None on the row path and NaN on
            # the vector path; both mean "unlabeled row".
            if key is None or (isinstance(key, float) and np.isnan(key)):
                continue
            if isinstance(key, bool) or not isinstance(key, (int, float)):
                raise ModelError(
                    f"label column {label!r} must hold integer classes; "
                    f"got {key!r}"
                )
            if isinstance(key, float):
                if not key.is_integer():
                    raise ModelError(
                        f"label column {label!r} must hold integer "
                        f"classes; got non-integral value {key!r}"
                    )
                key = int(key)
            summaries[key] = stats
        return summaries

    @staticmethod
    def _assignment_expression(
        dimensions: Sequence[str], centroids: np.ndarray
    ) -> str:
        from repro.core.fused import assignment_expression

        return assignment_expression(dimensions, centroids)

    @staticmethod
    def _assignment_case_expression(
        dimensions: Sequence[str], centroids: np.ndarray
    ) -> str:
        """Nearest-centroid subscript as pure SQL arithmetic: inline
        squared-distance expressions compared pairwise inside a CASE."""
        distance_exprs = []
        for centroid in centroids:
            terms = [
                f"({dim} - {float(value)!r}) * ({dim} - {float(value)!r})"
                for dim, value in zip(dimensions, centroid)
            ]
            distance_exprs.append("(" + " + ".join(terms) + ")")
        k = len(distance_exprs)
        whens = []
        for j in range(k):
            conditions = [
                f"{distance_exprs[j]} <= {distance_exprs[other]}"
                for other in range(k)
                if other != j
            ]
            condition = " AND ".join(conditions) if conditions else "1 = 1"
            whens.append(f"WHEN {condition} THEN {j + 1}")
        return f"CASE {' '.join(whens)} END"
