"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The DBMS substrate mirrors the
error categories a real relational engine reports: syntax errors from the
parser, semantic errors from the planner (unknown tables/columns, type
mismatches), runtime errors from the executor, and UDF-specific errors
that model the constraints the paper describes for Teradata's C UDF API
(no arrays, bounded heap segment, static MAX_d).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DatabaseError(ReproError):
    """Base class for errors raised by the DBMS substrate."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so error messages can point at the
    token, the way a DBMS parser reports ``Syntax error at or near ...``.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class CatalogError(DatabaseError):
    """A catalog object (table, view, UDF) is missing or duplicated."""


class SchemaError(DatabaseError):
    """A table schema is invalid (duplicate columns, bad types, ...)."""


class PlanningError(DatabaseError):
    """The statement parsed but cannot be planned.

    Examples: unknown column, aggregate nested in aggregate, GROUP BY
    referencing a missing expression.
    """


class ExecutionError(DatabaseError):
    """A runtime failure while executing a plan (division by zero on a
    non-null path, bad cast, arity mismatch in a function call)."""


class FaultInjected(DatabaseError):
    """The default error raised by a fault-injection site.

    Only ever raised when a :class:`repro.dbms.faults.FaultPlan` is
    installed (tests, chaos engineering); production code paths never
    construct it.  Carries the site name and the attributes the site
    fired with, so chaos tests can assert exactly which injection
    tripped.
    """

    def __init__(self, site: str, **attributes: object) -> None:
        detail = ", ".join(f"{k}={v!r}" for k, v in attributes.items())
        message = f"injected fault at {site!r}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.site = site
        self.attributes = attributes

    def __reduce__(self):
        # Keyword-only attributes defeat the default exception pickling;
        # faults injected inside pool worker processes must survive the
        # trip back to the coordinator intact.
        return (_rebuild_fault_injected, (self.site, dict(self.attributes)))


def _rebuild_fault_injected(
    site: str, attributes: "dict[str, object]"
) -> "FaultInjected":
    return FaultInjected(site, **attributes)


class RecoveryError(DatabaseError):
    """Crash recovery found durable state it cannot trust.

    Raised by ``open_durable`` when the write-ahead log is corrupt in
    the *middle* (a bad checksum with valid records after it — disk
    damage, not a torn tail), when the manifest is unreadable, or when a
    WAL record references state the checkpoint does not have.  A torn
    *tail* — an interrupted final write — is not an error: it is
    truncated silently, which is the standard ARIES contract.
    """


class SimulatedCrash(DatabaseError):
    """A deterministic, injected process death for crash-recovery tests.

    Armed through a :class:`~repro.dbms.faults.FaultSpec` at one of the
    durability fault sites (``wal.append``, ``wal.fsync``,
    ``checkpoint.write``).  When it fires, the durable session drops
    every WAL byte that was not yet fsynced — the pessimistic model of
    dying with dirty OS buffers — optionally leaves the first
    ``torn_bytes`` bytes of the first lost record on disk (a torn
    write), and marks itself dead; the test then reopens the directory
    with ``open_durable`` and asserts the committed-prefix invariant.
    """

    def __init__(
        self, message: str = "simulated process crash", torn_bytes: int = 0
    ) -> None:
        super().__init__(message)
        self.torn_bytes = torn_bytes

    def __reduce__(self):
        return (type(self), (self.args[0], self.torn_bytes))


class PartitionTimeoutError(DatabaseError):
    """A per-partition engine task exceeded its ``timeout_seconds``.

    The worker thread running the task cannot be killed, so the engine
    abandons its pool (see ``PartitionEngine.map``) and reports the
    timeout through :class:`PartitionExecutionError`; the stuck task is
    accounted for by ``PartitionEngine.active_tasks`` until it finishes.
    """

    def __init__(
        self, partition: int | None, timeout_seconds: float
    ) -> None:
        where = f"partition {partition}" if partition is not None else "task"
        super().__init__(
            f"{where} exceeded the {timeout_seconds:g}s task timeout"
        )
        self.partition = partition
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (type(self), (self.partition, self.timeout_seconds))


class PartitionExecutionError(DatabaseError):
    """One or more per-partition engine tasks failed under parallel
    execution.

    Aggregates every *observed* task error with per-partition
    attribution (``errors`` is a list of ``(partition, exception)``
    pairs in partition order).  ``first_error`` — the failure of the
    lowest-numbered failing partition — is deterministic across runs and
    worker counts because the engine gathers results strictly in
    submission order; it is also set as ``__cause__``.  Later siblings
    may or may not have started before cancellation, so ``errors`` can
    grow with scheduling, but its first entry never changes.
    """

    def __init__(
        self,
        errors: "list[tuple[int | None, BaseException]]",
        cancelled: int = 0,
    ) -> None:
        if not errors:
            raise ValueError("PartitionExecutionError needs >= 1 task error")
        partition, first = errors[0]
        where = f"partition {partition}" if partition is not None else "a task"
        message = (
            f"{len(errors)} partition task(s) failed "
            f"({cancelled} cancelled before starting); first error in "
            f"{where}: {type(first).__name__}: {first}"
        )
        super().__init__(message)
        self.errors = errors
        self.cancelled = cancelled

    def __reduce__(self):
        return (type(self), (self.errors, self.cancelled))

    @property
    def first_error(self) -> BaseException:
        """The lowest-partition-number failure (deterministic identity)."""
        return self.errors[0][1]

    @property
    def partitions(self) -> "list[int | None]":
        """The partitions that reported errors, in partition order."""
        return [partition for partition, _ in self.errors]


class TypeMismatchError(ExecutionError):
    """A value could not be coerced to the declared SQL type."""


class ConstraintViolation(DatabaseError):
    """A primary-key or not-null constraint was violated on insert."""


class UdfError(DatabaseError):
    """Base class for errors in user-defined function handling."""


class UdfRegistrationError(UdfError):
    """The UDF definition itself is invalid (bad arity, name clash)."""


class UdfArgumentError(UdfError):
    """A UDF was invoked with arguments it cannot accept.

    This mirrors the paper's constraint that Teradata UDF parameters may
    only be simple types — never arrays or result sets.
    """


class UdfMemoryError(UdfError):
    """Aggregate UDF state outgrew its allocated heap segment.

    The paper notes the aggregate heap is limited to one 64 KB segment on
    Unix/Windows; exceeding it is an error at allocation time, and the
    static ``MAX_d`` struct layout exists precisely to respect it.
    """


class PackingError(ReproError):
    """A packed-string payload (vector or (n, L, Q) result) is malformed."""


class ModelError(ReproError):
    """A statistical model cannot be built or applied.

    Examples: singular X·Xᵀ in regression, k > d in PCA, scoring a data
    set whose dimensionality does not match the model.
    """


class ServingError(ReproError):
    """Base class for errors raised by the model-serving layer
    (:mod:`repro.serving`): session admission, snapshot reads, the
    versioned model registry, and the micro-batching scorer."""


class ServingClosedError(ServingError):
    """The serving server has shut down (directly or via
    ``Database.close``): new sessions and new score requests are
    rejected.  Requests already queued when the shutdown began are
    drained and answered, never dropped."""


class ServingOverloadedError(ServingError):
    """Admission control rejected the request: the micro-batch queue is
    at ``max_queue_depth`` or the session pool is at ``max_sessions``.
    The caller should back off and retry; nothing was enqueued."""


class SnapshotInvalidatedError(ServingError):
    """A snapshot read found its pinned table version destroyed.

    Appends after the pin are fine — the snapshot keeps serving its
    stale-but-consistent prefix — but a destructive mutation (TRUNCATE,
    DROP/CREATE) discards the pinned rows, so every later read through
    the snapshot raises this instead of returning torn data.
    """


class RegistryError(ServingError):
    """A model-registry operation failed: unknown model name, unknown
    version, an unregistrable model object, or an invalid model name."""


class ExportError(ReproError):
    """The ODBC export simulator failed (bad path, unsupported type)."""


class WorkloadError(ReproError):
    """A synthetic workload specification is invalid."""
