"""One experiment per table and figure of the paper's Section 4.

Each function regenerates the corresponding result with the same
workloads and parameter sweeps, printing measured simulated seconds next
to the paper's published numbers.  Numeric model results are computed
for real; timing comes from the calibrated cost model (see DESIGN.md's
timing-methodology section).
"""

from __future__ import annotations

import numpy as np

from repro.bench import calibration
from repro.bench.harness import (
    BenchDataset,
    ExperimentResult,
    cpp_and_odbc_seconds,
    nlq_sql_seconds,
    nlq_udf_seconds,
    scaled_dataset,
)
from repro.core.blockwise import blockwise_call_count, blockwise_sql
from repro.core.models.correlation import CorrelationModel
from repro.core.models.kmeans import KMeansModel
from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.scoring.scorer import ModelScorer
from repro.core.summary import AugmentedSummary, MatrixType, SummaryStatistics
from repro.external.workstation import model_build_seconds
from repro.workloads.generator import MixtureSpec, SyntheticDataGenerator

_K = 16  # the paper's scoring/clustering k


# --------------------------------------------------------------------- table 1
def table1() -> ExperimentResult:
    """Total time to build models at d=32: C++ vs SQL vs UDF."""
    d = 32
    rows = []
    for n_thousand, paper in sorted(calibration.PAPER_TABLE1.items()):
        data = scaled_dataset(n_thousand * 1000.0, d)
        cpp_scan, _export = cpp_and_odbc_seconds(data)
        sql_seconds = nlq_sql_seconds(data)
        udf_seconds = nlq_udf_seconds(data)
        build = model_build_seconds("correlation", d)
        rows.append(
            (
                n_thousand,
                round(cpp_scan + build, 1),
                round(sql_seconds + build, 1),
                round(udf_seconds + build, 1),
                *paper,
            )
        )
    return ExperimentResult(
        "table1",
        "Total time to build models at d=32 (secs)",
        ["n_x1000", "cpp", "sql", "udf", "paper_cpp", "paper_sql", "paper_udf"],
        rows,
        "model build from (n, L, Q) adds ~1 s on top of the scan for "
        "every implementation; export time excluded as in the paper",
    )


# --------------------------------------------------------------------- table 2
def table2() -> ExperimentResult:
    """Time to compute n, L, Q and time to export X with ODBC."""
    rows = []
    for (n_thousand, d), paper in sorted(calibration.PAPER_TABLE2.items()):
        data = scaled_dataset(n_thousand * 1000.0, d)
        cpp_scan, export = cpp_and_odbc_seconds(data)
        sql_seconds = nlq_sql_seconds(data)
        udf_seconds = nlq_udf_seconds(data)
        rows.append(
            (
                n_thousand,
                d,
                round(cpp_scan, 1),
                round(sql_seconds, 1),
                round(udf_seconds, 1),
                round(export, 1),
                *paper,
            )
        )
    return ExperimentResult(
        "table2",
        "Time for n, L, Q with aggregate UDF and ODBC export time (secs)",
        [
            "n_x1000", "d", "cpp", "sql", "udf", "odbc",
            "paper_cpp", "paper_sql", "paper_udf", "paper_odbc",
        ],
        rows,
    )


# --------------------------------------------------------------------- table 3
def table3() -> ExperimentResult:
    """Model build time from (n, L, Q): independent of n, grows with d."""
    rows = []
    generator_cache: dict[int, SummaryStatistics] = {}
    for d, paper in sorted(calibration.PAPER_TABLE3.items()):
        # Build the models for real from a synthetic summary to prove the
        # path works; report the workstation-model times (the paper's
        # hardware), which depend only on d (and k for clustering).
        if d not in generator_cache:
            sample = SyntheticDataGenerator(MixtureSpec(d=d, k=4)).generate(512)
            generator_cache[d] = SummaryStatistics.from_matrix(sample.X)
        stats = generator_cache[d]
        CorrelationModel.from_summary(stats)
        PCAModel.from_summary(stats, k=min(4, d))
        rows.append(
            (
                d,
                round(model_build_seconds("correlation", d), 1),
                round(model_build_seconds("regression", d), 1),
                round(model_build_seconds("pca", d), 1),
                round(model_build_seconds("clustering", d, _K), 1),
                *paper,
            )
        )
    return ExperimentResult(
        "table3",
        "Time to build models once n, L, Q are available (secs; any n)",
        [
            "d", "correlation", "regression", "pca", "clustering",
            "paper_corr", "paper_regr", "paper_pca", "paper_clu",
        ],
        rows,
        "independent of n: the inputs are the summary matrices only",
    )


# --------------------------------------------------------------------- table 4
def _fitted_scorer(data: BenchDataset) -> tuple[ModelScorer, dict]:
    """Fit regression / PCA / clustering on the physical sample and store
    the model tables for scoring."""
    X = data.sample.X
    y = data.sample.y
    scorer = ModelScorer(data.db, data.table, data.dimensions)
    models: dict = {}
    if y is not None:
        regression = LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(X, y)
        )
        scorer.store_regression(regression)
        models["regression"] = regression
    stats = SummaryStatistics.from_matrix(X)
    pca = PCAModel.from_summary(stats, k=_K)
    scorer.store_pca(pca)
    models["pca"] = pca
    kmeans = KMeansModel.fit_matrix(X, _K, max_iterations=8)
    scorer.store_clustering(kmeans)
    models["clustering"] = kmeans
    data.db.reset_clock()
    return scorer, models


def table4() -> ExperimentResult:
    """Scoring time at d=32, k=16: SQL expressions vs scalar UDFs."""
    d = 32
    rows = []
    for n_thousand in (100, 200, 400, 800):
        data = scaled_dataset(n_thousand * 1000.0, d, with_y=True)
        scorer, _models = _fitted_scorer(data)
        measured = {
            "regression": (
                scorer.score_regression("sql").simulated_seconds,
                scorer.score_regression("udf").simulated_seconds,
            ),
            "pca": (
                scorer.score_pca(_K, "sql").simulated_seconds,
                scorer.score_pca(_K, "udf").simulated_seconds,
            ),
            "clustering": (
                scorer.score_clustering(_K, "sql").simulated_seconds,
                scorer.score_clustering(_K, "udf").simulated_seconds,
            ),
        }
        for technique, (sql_s, udf_s) in measured.items():
            paper = calibration.PAPER_TABLE4[(technique, n_thousand)]
            rows.append(
                (
                    n_thousand,
                    technique,
                    round(sql_s, 1),
                    round(udf_s, 1),
                    *paper,
                )
            )
    return ExperimentResult(
        "table4",
        "Time to score X at d=32, k=16 (secs)",
        ["n_x1000", "technique", "sql", "udf", "paper_sql", "paper_udf"],
        rows,
        "SQL clustering pays the pivoted derived table + second pass",
    )


# --------------------------------------------------------------------- table 5
def table5() -> ExperimentResult:
    """GROUP BY aggregate UDF: string vs list passing, k groups."""
    d = 32
    rows = []
    for (n_thousand, k), paper in sorted(calibration.PAPER_TABLE5.items()):
        data = scaled_dataset(n_thousand * 1000.0, d)
        group = f"(i MOD {k}) + 1"
        string_seconds = nlq_udf_seconds(
            data, MatrixType.DIAGONAL, "string", group_by=group
        )
        list_seconds = nlq_udf_seconds(
            data, MatrixType.DIAGONAL, "list", group_by=group
        )
        rows.append(
            (
                n_thousand,
                k,
                round(string_seconds, 1),
                round(list_seconds, 1),
                *paper,
            )
        )
    return ExperimentResult(
        "table5",
        "GROUP BY with aggregate UDF, d=32, diagonal Q (secs)",
        ["n_x1000", "k", "string", "list", "paper_string", "paper_list"],
        rows,
        "the jump at k=32 is the group state outgrowing the 64 KB segment",
    )


# --------------------------------------------------------------------- table 6
def table6() -> ExperimentResult:
    """Very high d via block-partitioned UDF calls in one statement."""
    n = 100_000.0
    rows = []
    for d, (paper_calls, paper_seconds) in sorted(calibration.PAPER_TABLE6.items()):
        data = scaled_dataset(n, d, physical_rows=64, mixture_k=4)
        calls = blockwise_call_count(d)
        sql = blockwise_sql(data.table, data.dimensions)
        seconds = data.db.execute(sql).simulated_seconds
        rows.append((d, calls, round(seconds, 1), paper_calls, paper_seconds))
    return ExperimentResult(
        "table6",
        "Time growth for high d at n=100k: one synchronized scan, "
        "one UDF call per 64x64 block of Q (secs)",
        ["d", "calls", "total", "paper_calls", "paper_total"],
        rows,
        "total time proportional to the number of calls",
    )


# -------------------------------------------------------------------- figures
def figure1() -> ExperimentResult:
    """SQL vs UDF varying n, triangular matrix, d in {8, 16, 32, 64}."""
    rows = []
    for d in (8, 16, 32, 64):
        for n_thousand in (100, 200, 400, 800, 1600):
            data = scaled_dataset(n_thousand * 1000.0, d)
            rows.append(
                (
                    d,
                    n_thousand,
                    round(nlq_sql_seconds(data), 1),
                    round(nlq_udf_seconds(data), 1),
                )
            )
    return ExperimentResult(
        "figure1",
        "SQL vs aggregate UDF varying n (triangular matrix, secs)",
        ["d", "n_x1000", "sql", "udf"],
        rows,
        "SQL wins at low d, the UDF wins at high d; both linear in n",
    )


def figure2() -> ExperimentResult:
    """SQL vs UDF varying d, n in {100k, 200k, 800k, 1600k}."""
    rows = []
    for n_thousand in (100, 200, 800, 1600):
        for d in (8, 16, 32, 48, 64):
            data = scaled_dataset(n_thousand * 1000.0, d)
            rows.append(
                (
                    n_thousand,
                    d,
                    round(nlq_sql_seconds(data), 1),
                    round(nlq_udf_seconds(data), 1),
                )
            )
    return ExperimentResult(
        "figure2",
        "SQL vs aggregate UDF varying d (triangular matrix, secs)",
        ["n_x1000", "d", "sql", "udf"],
        rows,
        "SQL grows quadratically in d (the 1+d+d² result), "
        "the UDF almost linearly",
    )


def figure3() -> ExperimentResult:
    """Parameter passing: string vs list, varying n (d=8) and d (n=1.6M)."""
    rows = []
    for n_thousand in (100, 400, 800, 1600):
        data = scaled_dataset(n_thousand * 1000.0, 8)
        rows.append(
            (
                "vary_n(d=8)",
                n_thousand,
                8,
                round(nlq_udf_seconds(data, passing="string"), 1),
                round(nlq_udf_seconds(data, passing="list"), 1),
            )
        )
    for d in (8, 16, 32, 64):
        data = scaled_dataset(1_600_000.0, d)
        rows.append(
            (
                "vary_d(n=1600k)",
                1600,
                d,
                round(nlq_udf_seconds(data, passing="string"), 1),
                round(nlq_udf_seconds(data, passing="list"), 1),
            )
        )
    return ExperimentResult(
        "figure3",
        "Aggregate UDF parameter passing style (secs)",
        ["sweep", "n_x1000", "d", "string", "list"],
        rows,
        "similar at d<=16; list clearly better at d>=32 — the number-to-"
        "string overhead beats the quadratic arithmetic",
    )


def figure4() -> ExperimentResult:
    """Matrix type: diagonal vs triangular vs full."""
    rows = []
    for n_thousand in (100, 400, 800, 1600):
        data = scaled_dataset(n_thousand * 1000.0, 64)
        rows.append(
            (
                "vary_n(d=64)",
                n_thousand,
                64,
                round(nlq_udf_seconds(data, MatrixType.DIAGONAL), 1),
                round(nlq_udf_seconds(data, MatrixType.TRIANGULAR), 1),
                round(nlq_udf_seconds(data, MatrixType.FULL), 1),
            )
        )
    for d in (8, 16, 32, 64):
        data = scaled_dataset(1_600_000.0, d)
        rows.append(
            (
                "vary_d(n=1600k)",
                1600,
                d,
                round(nlq_udf_seconds(data, MatrixType.DIAGONAL), 1),
                round(nlq_udf_seconds(data, MatrixType.TRIANGULAR), 1),
                round(nlq_udf_seconds(data, MatrixType.FULL), 1),
            )
        )
    return ExperimentResult(
        "figure4",
        "Aggregate UDF matrix optimization: diag/triangular/full (secs)",
        ["sweep", "n_x1000", "d", "diag", "triangular", "full"],
        rows,
        "marginal difference at low d, important at d=64",
    )


def figure5() -> ExperimentResult:
    """Time complexity of the aggregate UDF over n and d, all types."""
    rows = []
    for d in (32, 64):
        for n_thousand in (100, 400, 800, 1600):
            data = scaled_dataset(n_thousand * 1000.0, d)
            rows.append(
                (
                    d,
                    n_thousand,
                    round(nlq_udf_seconds(data, MatrixType.DIAGONAL), 1),
                    round(nlq_udf_seconds(data, MatrixType.TRIANGULAR), 1),
                    round(nlq_udf_seconds(data, MatrixType.FULL), 1),
                )
            )
    return ExperimentResult(
        "figure5",
        "Aggregate UDF time varying n and d, all matrix types (secs)",
        ["d", "n_x1000", "diag", "triangular", "full"],
        rows,
        "clearly linear in n for all three matrix types",
    )


def figure6() -> ExperimentResult:
    """Scoring UDF scalability varying n (d=32, k=16)."""
    d = 32
    rows = []
    for n_thousand in (100, 200, 400, 800, 1600):
        data = scaled_dataset(n_thousand * 1000.0, d, with_y=True)
        scorer, _models = _fitted_scorer(data)
        rows.append(
            (
                n_thousand,
                round(scorer.score_regression("udf").simulated_seconds, 1),
                round(scorer.score_pca(_K, "udf").simulated_seconds, 1),
                round(scorer.score_clustering(_K, "udf").simulated_seconds, 1),
            )
        )
    return ExperimentResult(
        "figure6",
        "Scalar scoring UDFs varying n at d=32, k=16 (secs)",
        ["n_x1000", "regression", "pca", "clustering"],
        rows,
        "linear in n; clustering most demanding, regression a dot product",
    )


EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}
