"""Command-line benchmark runner.

Usage::

    python -m repro.bench list            # show experiment ids
    python -m repro.bench run table1      # one experiment
    python -m repro.bench run all         # every table and figure
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import format_table, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiment ids")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "names",
        nargs="+",
        help="experiment ids (table1..table6, figure1..figure6) or 'all'",
    )
    run_parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows to DIR/<id>.csv "
        "(for plotting the figures)",
    )
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if "all" in arguments.names else arguments.names
    csv_dir = Path(arguments.csv) if arguments.csv else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name)
        elapsed = time.perf_counter() - started
        print(format_table(result))
        print(f"  (wall {elapsed:.1f}s)")
        print()
        if csv_dir is not None:
            target = csv_dir / f"{result.experiment}.csv"
            with target.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(result.columns)
                writer.writerows(result.rows)
            print(f"  wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
