"""Paper reference numbers and the cost-model fit.

Every table and figure of the paper's Section 4 is transcribed here so
benchmarks can print *paper vs. measured* side by side and tests can
assert the qualitative claims.  Times are seconds on the paper's
hardware (20-AMP Teradata V2R6 server; 1.6 GHz workstation; 100 Mbps
LAN; ODBC export).

How the cost constants were fitted
----------------------------------
The engine's charging formulas (see :mod:`repro.dbms.cost`) were reduced
to closed forms and solved against the rows of Tables 1-5:

* aggregate-UDF per-row wall time ``T(d) = [scan_row + (d+1)·scan_value
  + udf_row_overhead + (d+1)·udf_param + (3d + ops(d))·udf_arith] / 20``
  was fitted to Table 2's d ∈ {8..64} column and Table 1's n-sweep
  (≈ 30-65 µs/row), with ``udf_arith`` pinned by Figure 4's ~30 s gap
  between the triangular and diagonal matrix at d=64, n=1.6M;
* the SQL long query's fixed cost (parse + wide-spool creation,
  ``(1+d+d²) × 16 ms``) and per-row interpreted evaluation
  (``0.28 µs`` per expression node) were fitted to Table 2's SQL column
  and Table 1's slope;
* ``udf_string_char`` comes from Figure 3's string-vs-list gap
  (≈ 47 s at d=32, n=1.6M over ≈ 19·d characters per row);
* the graded GROUP BY spill multiplier reproduces Table 5: the diagonal
  d=32 struct is ≈ 2 KB/group, so k=16 crosses half the 64 KB segment
  (mild climb) and k=32 exceeds it (the ×4 jump);
* scalar-UDF constants were fitted to Table 4 so regression scoring
  matches its SQL expression and clustering lands near the paper's
  UDF column;
* workstation constants (row 26.2 µs, parse 0.44 µs/value, multiply-add
  0.69 µs) solve Table 2's C++ column exactly at d ∈ {8, 64};
* ODBC constants (0.1875 ms/value + 0.15 ms/row) reproduce Table 2's
  export column within 2%.

Known residuals (recorded honestly; see EXPERIMENTS.md): the SQL route
is under-charged at d ≤ 16 (measured ≈2 s at d=8 vs. the paper's 6 s
floor — our fixed statement cost is smaller than Teradata's) and
PCA scoring via SQL expressions over-charges ≈2× relative to its UDF
twin, where the paper has them equal.  All *qualitative* claims — who
wins where, linear vs. quadratic growth, crossovers, the k=32 jump —
hold; the assertions live in the benchmark suite.
"""

from __future__ import annotations

#: Table 1 — total time to build models at d=32 (secs).
#: rows: n (×1000) → (C++, SQL, UDF); identical for correlation/PCA and
#: regression up to ±1 s in the paper, so one triple is recorded.
PAPER_TABLE1 = {
    100: (49, 24, 6),
    200: (97, 33, 11),
    400: (194, 43, 21),
    800: (387, 59, 42),
    1600: (774, 105, 77),
}

#: Table 2 — time to compute n, L, Q and time to export X with ODBC.
#: rows: (n×1000, d) → (C++, SQL, UDF, ODBC).
PAPER_TABLE2 = {
    (100, 8): (6, 6, 4, 168),
    (100, 16): (16, 10, 5, 311),
    (100, 32): (48, 23, 5, 615),
    (100, 64): (162, 77, 8, 1204),
    (200, 8): (12, 10, 9, 335),
    (200, 16): (31, 15, 10, 623),
    (200, 32): (96, 32, 10, 1234),
    (200, 64): (324, 112, 12, 2407),
}

#: Table 3 — time to build models from n, L, Q; independent of n (secs).
#: rows: d → (correlation, regression, PCA, clustering).
PAPER_TABLE3 = {
    4: (1, 1, 1, 1),
    8: (1, 1, 1, 1),
    16: (1, 1, 1, 1),
    32: (1, 1, 2, 1),
    64: (1, 2, 4, 1),
}

#: Table 4 — time to score X at d=32, k=16 (secs).
#: rows: (technique, n×1000) → (SQL, UDF).
PAPER_TABLE4 = {
    ("regression", 100): (1, 1),
    ("regression", 200): (2, 2),
    ("regression", 400): (2, 3),
    ("regression", 800): (5, 6),
    ("pca", 100): (2, 2),
    ("pca", 200): (3, 4),
    ("pca", 400): (8, 9),
    ("pca", 800): (17, 18),
    ("clustering", 100): (10, 3),
    ("clustering", 200): (19, 6),
    ("clustering", 400): (37, 12),
    ("clustering", 800): (76, 25),
}

#: Table 5 — GROUP BY with the aggregate UDF at d=32, diagonal Q (secs).
#: rows: (n×1000, k) → (string, list).
PAPER_TABLE5 = {
    (800, 1): (61, 36),
    (800, 2): (59, 37),
    (800, 4): (63, 38),
    (800, 8): (68, 42),
    (800, 16): (78, 52),
    (800, 32): (198, 175),
    (1600, 1): (120, 73),
    (1600, 2): (117, 69),
    (1600, 4): (124, 65),
    (1600, 8): (138, 86),
    (1600, 16): (168, 118),
    (1600, 32): (458, 415),
}

#: Table 6 — time growth for high d at n=100k (secs).
#: rows: d → (number of UDF calls, total time).
PAPER_TABLE6 = {
    64: (1, 7),
    128: (4, 28),
    256: (16, 110),
    512: (64, 438),
    1024: (256, 1753),
}

#: Figure 1/2 grid — SQL vs UDF for the triangular matrix (secs), read
#: off the published plots (±10%).  rows: (d, n×1000) → (SQL, UDF).
PAPER_FIGURES_1_2 = {
    (8, 100): (6, 4),
    (8, 1600): (20, 60),
    (16, 100): (10, 5),
    (16, 1600): (32, 62),
    (32, 100): (23, 5),
    (32, 1600): (105, 77),
    (64, 100): (77, 8),
    (64, 1600): (320, 100),
}

#: Figure 4/5 — matrix-type comparison at n=1600k (secs), read off the
#: plots.  rows: d → (diag, triangular, full).
PAPER_FIGURE4 = {
    32: (60, 72, 76),
    64: (65, 95, 115),
}

#: Figure 6 — scoring scalability at d=32, k=16 (secs), read off the
#: plot.  rows: n×1000 → (regression, PCA, clustering).
PAPER_FIGURE6 = {
    400: (3, 9, 12),
    800: (6, 18, 25),
    1600: (12, 36, 50),
}

#: Default physical rows stored per benchmark table; the cost model's
#: row_scale mechanism makes simulated times independent of this, so it
#: only trades wall-clock against sampling noise in the numeric results.
DEFAULT_PHYSICAL_ROWS = 320


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when *measured* is within ×/÷ *factor* of *reference* — the
    acceptance band the shape assertions use for absolute magnitudes."""
    if reference <= 0 or measured <= 0:
        return False
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor
