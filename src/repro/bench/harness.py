"""Shared benchmark machinery: scaled data sets, timed runs, table output.

Every experiment stores a small number of *physical* rows (default 320)
and sets the table's ``row_scale`` so the cost model charges for the
paper's nominal n (100k – 1.6M).  Numeric results are computed for real
on the physical sample; simulated seconds are exact for the nominal
size because every per-row charge is linear (see
:mod:`repro.dbms.cost`).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.bench.calibration import DEFAULT_PHYSICAL_ROWS
from repro.core.blockwise import NlqBlockUdf
from repro.core.nlq_udf import nlq_call_sql, register_nlq_udfs
from repro.core.scoring.udfs import register_scoring_udfs
from repro.core.sqlgen import NlqSqlGenerator
from repro.core.summary import MatrixType
from repro.dbms.database import Database
from repro.dbms.schema import dimension_names
from repro.external.cpp_tool import CppAnalysisTool
from repro.odbc.export import OdbcExporter
from repro.workloads.generator import DatasetSample, MixtureSpec, load_dataset


@dataclass
class ExperimentResult:
    """The regenerated rows of one paper table/figure."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[tuple]
    notes: str = ""

    def column(self, name: str) -> list:
        position = self.columns.index(name)
        return [row[position] for row in self.rows]


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    header = [result.columns]
    body = [[cell(value) for value in row] for row in result.rows]
    widths = [
        max(len(line[index]) for line in header + body)
        for index in range(len(result.columns))
    ]
    lines = [f"== {result.experiment}: {result.title}"]
    lines.append("  " + "  ".join(
        name.rjust(width) for name, width in zip(result.columns, widths)
    ))
    lines.append("  " + "  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  " + "  ".join(
            value.rjust(width) for value, width in zip(line, widths)
        ))
    if result.notes:
        lines.append(f"  note: {result.notes}")
    return "\n".join(lines)


@dataclass
class BenchDataset:
    """A loaded, UDF-equipped database simulating n nominal rows."""

    db: Database
    table: str
    d: int
    nominal_rows: float
    sample: DatasetSample = field(repr=False)

    @property
    def dimensions(self) -> list[str]:
        return dimension_names(self.d)


def scaled_dataset(
    n: float,
    d: int,
    physical_rows: int = DEFAULT_PHYSICAL_ROWS,
    with_y: bool = False,
    amps: int = 20,
    mixture_k: int = 16,
    seed: int = 42,
) -> BenchDataset:
    """Build a database holding ``physical_rows`` rows that the cost
    model treats as *n* rows (the paper's data-set scale)."""
    physical_rows = min(physical_rows, int(n))
    db = Database(amps=amps)
    spec = MixtureSpec(d=d, k=mixture_k, seed=seed)
    sample = load_dataset(
        db, "x", physical_rows, spec, with_y=with_y, row_scale=n / physical_rows
    )
    register_nlq_udfs(db)
    register_scoring_udfs(db)
    db.register_udf(NlqBlockUdf())
    db.reset_clock()
    return BenchDataset(db, "x", d, n, sample)


# ---------------------------------------------------------------- plan shape
def plan_shape(data: BenchDataset, sql: str) -> "PlanShape":
    """The EXPLAIN plan shape of *sql* against this dataset's database.

    Benchmarks use this to *assert* the claims their numbers rely on —
    e.g. that the nLQ model build is exactly one scan of X (paper,
    Section 3.4) — instead of inferring them from timings.  Purely
    analytical: nothing executes and no simulated time is charged.
    """
    plan = data.db.explain_plan(sql)
    return PlanShape(
        scans=len(plan.scans),
        aggregates=len(plan.find("aggregate")),
        joins=len(
            [
                node
                for node in plan.nodes()
                if node.operator in ("join", "cross join", "left outer join")
            ]
        ),
        subqueries=len(plan.find("subquery")),
        plan=plan,
    )


def batch_plan_shape(
    data: BenchDataset, statements: Sequence[str]
) -> "PlanShape":
    """The plan shape :meth:`Database.execute_batch` would run.

    A consolidated batch reports ``scans == 1`` regardless of how many
    statements ride it (later distinct statements carry ``shared-scan``
    markers, which are not scans); a refused batch reports one scan per
    statement.  Purely analytical, like :func:`plan_shape`.
    """
    plan = data.db.explain_batch(statements)
    return PlanShape(
        scans=len(plan.scans),
        aggregates=len(plan.find("aggregate")),
        joins=len(
            [
                node
                for node in plan.nodes()
                if node.operator in ("join", "cross join", "left outer join")
            ]
        ),
        subqueries=len(plan.find("subquery")),
        plan=plan,
    )


def plan_shape_gate(before: "PlanShape", after: "PlanShape") -> str | None:
    """Reject a rewrite that regresses plan shape ("gates before
    treatment"): a treatment plan may not scan, join, or spool more than
    the baseline it claims to improve on.  Returns a description of the
    regression, or ``None`` when the gate passes — benchmarks assert
    ``plan_shape_gate(base, treated) is None`` before trusting any
    speedup number.
    """
    regressions = []
    if after.scans > before.scans:
        regressions.append(f"scan regression: {before.scans} -> {after.scans}")
    if after.joins > before.joins:
        regressions.append(f"join regression: {before.joins} -> {after.joins}")
    if after.subqueries > before.subqueries:
        regressions.append(
            f"subquery regression: {before.subqueries} -> {after.subqueries}"
        )
    return "; ".join(regressions) or None


@dataclass
class PlanShape:
    """Operator counts of one EXPLAIN plan (see :func:`plan_shape`)."""

    scans: int
    aggregates: int
    joins: int
    subqueries: int
    plan: "object" = field(repr=False, default=None)

    @property
    def single_scan(self) -> bool:
        """The paper's headline property: one pass over the data."""
        return self.scans == 1


# ------------------------------------------------------------- timed actions
def nlq_udf_seconds(
    data: BenchDataset,
    matrix_type: MatrixType = MatrixType.TRIANGULAR,
    passing: str = "list",
    group_by: str | None = None,
) -> float:
    """Simulated seconds of one aggregate-UDF (n, L, Q) query."""
    sql = nlq_call_sql(
        data.table, data.dimensions, matrix_type, passing, group_by=group_by
    )
    return data.db.execute(sql).simulated_seconds


def nlq_sql_seconds(
    data: BenchDataset, matrix_type: MatrixType = MatrixType.TRIANGULAR
) -> float:
    """Simulated seconds of the long 1+d+d²-term SQL query."""
    generator = NlqSqlGenerator(data.table, data.dimensions)
    return data.db.execute(generator.long_query_sql(matrix_type)).simulated_seconds


def cpp_and_odbc_seconds(
    data: BenchDataset,
    matrix_type: MatrixType = MatrixType.TRIANGULAR,
) -> tuple[float, float]:
    """(C++ scan seconds, ODBC export seconds) for the external route.

    Really exports the physical rows to CSV and really scans them; both
    charges use the nominal row count.
    """
    exporter = OdbcExporter()
    tool = CppAnalysisTool()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = Path(tmp) / "x.csv"
        report = exporter.export_table(data.db, data.table, path)
        scale = data.nominal_rows / max(data.db.table(data.table).row_count, 1)
        scan = tool.compute_nlq(
            path,
            columns=data.dimensions,
            matrix_type=matrix_type,
            row_scale=scale,
        )
    return scan.simulated_seconds, report.simulated_seconds


RunnerFn = Callable[[], ExperimentResult]


def run_experiment(name: str) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``table1``)."""
    from repro.bench.experiments import EXPERIMENTS

    try:
        runner: RunnerFn = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return runner()


def run_all(names: Sequence[str] | None = None) -> list[ExperimentResult]:
    from repro.bench.experiments import EXPERIMENTS

    selected = list(names) if names else sorted(EXPERIMENTS)
    return [run_experiment(name) for name in selected]
