"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.harness import ExperimentResult, format_table, run_experiment
from repro.bench.experiments import EXPERIMENTS

__all__ = ["EXPERIMENTS", "ExperimentResult", "format_table", "run_experiment"]
