"""Setup shim.

The environment has no ``wheel`` package (offline), so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` use the legacy develop path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
